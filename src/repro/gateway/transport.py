"""Asyncio transports carrying gateway wire frames.

A :class:`FrameChannel` is the seam between asyncio and the shim layer:
one bidirectional, already-deframed byte channel — one TCP connection,
or one remote address on a UDP socket.  :class:`SocketLink` only ever
sees ``send(frame_bytes)`` / ``set_receiver`` / ``close``, so TCP's
length-prefixed stream and UDP's datagram-per-frame never leak upward.

Malformed *stream framing* (oversize or impossible length prefixes) is
caught here, counted, and answered with a clean ``transport.close()`` —
by the time bytes reach a receiver they are one well-delimited candidate
frame (whose *content* the shim layer still validates).
"""

from __future__ import annotations

import asyncio
import socket
from typing import Callable, Dict, List, Optional, Tuple

from ..shard.framing import FrameFormatError
from .wire import MAX_FRAME_BYTES, StreamUnframer, stream_record

Receiver = Callable[[bytes], None]


class FrameChannel:
    """One framed byte channel (base: bookkeeping + callbacks)."""

    def __init__(self) -> None:
        self._receiver: Optional[Receiver] = None
        self._close_cbs: List[Callable[[], None]] = []
        self._open = True
        self.frames_in = 0
        self.frames_out = 0

    @property
    def is_open(self) -> bool:
        return self._open

    def set_receiver(self, receiver: Receiver) -> None:
        self._receiver = receiver

    def on_close(self, cb: Callable[[], None]) -> None:
        self._close_cbs.append(cb)

    def send(self, buf: bytes) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    # -- transport side -------------------------------------------------
    def _feed(self, buf: bytes) -> None:
        self.frames_in += 1
        if self._receiver is not None:
            self._receiver(buf)

    def _mark_closed(self) -> None:
        if not self._open:
            return
        self._open = False
        cbs, self._close_cbs = self._close_cbs, []
        for cb in cbs:
            cb()


class TcpFrameChannel(FrameChannel):
    """Length-prefixed frames over one TCP connection."""

    def __init__(self, transport: asyncio.Transport) -> None:
        super().__init__()
        self._transport = transport

    def send(self, buf: bytes) -> bool:
        if not self._open or self._transport.is_closing():
            return False
        self._transport.write(stream_record(buf))
        self.frames_out += 1
        return True

    def close(self) -> None:
        if self._open and not self._transport.is_closing():
            self._transport.close()
        # _mark_closed fires from connection_lost, so close() is safe to
        # call from either side without double-running callbacks


class StreamFrameProtocol(asyncio.Protocol):
    """The TCP side of the gateway wire: deframe, contain, hand off.

    ``on_channel(channel, peername)`` runs at connection time.  A
    framing violation closes the connection and (optionally) reports to
    ``on_error`` — it never propagates into the event loop.
    """

    def __init__(self, on_channel: Callable[[TcpFrameChannel, object], None],
                 on_error: Optional[Callable[[Exception], None]] = None,
                 max_frame: int = MAX_FRAME_BYTES) -> None:
        self._on_channel = on_channel
        self._on_error = on_error
        self._unframer = StreamUnframer(max_frame)
        self.channel: Optional[TcpFrameChannel] = None

    def connection_made(self, transport: asyncio.BaseTransport) -> None:
        self.channel = TcpFrameChannel(transport)  # type: ignore[arg-type]
        self._on_channel(self.channel, transport.get_extra_info("peername"))

    def data_received(self, data: bytes) -> None:
        if self.channel is None or not self.channel.is_open:
            return
        try:
            frames = self._unframer.feed(data)
        except FrameFormatError as exc:
            if self._on_error is not None:
                self._on_error(exc)
            self.channel.close()
            return
        for buf in frames:
            self.channel._feed(buf)

    def connection_lost(self, exc: Optional[Exception]) -> None:
        if self.channel is not None:
            self.channel._mark_closed()


class UdpFrameChannel(FrameChannel):
    """One remote address on a shared UDP socket (one frame/datagram)."""

    def __init__(self, transport: asyncio.DatagramTransport,
                 addr: Optional[Tuple[str, int]],
                 registry: Optional[Dict[Tuple[str, int], "UdpFrameChannel"]]
                 = None, owns_transport: bool = False) -> None:
        super().__init__()
        self._transport = transport
        self._addr = addr
        self._registry = registry
        self._owns_transport = owns_transport

    def send(self, buf: bytes) -> bool:
        if not self._open or self._transport.is_closing():
            return False
        if self._addr is not None:
            self._transport.sendto(buf, self._addr)
        else:
            self._transport.sendto(buf)   # connected client socket
        self.frames_out += 1
        return True

    def close(self) -> None:
        if self._registry is not None and self._addr is not None:
            self._registry.pop(self._addr, None)
        if self._owns_transport and not self._transport.is_closing():
            self._transport.close()
        self._mark_closed()


class DatagramFrameRouter(asyncio.DatagramProtocol):
    """Server side of UDP: demultiplex datagrams into per-peer channels.

    UDP has no connections, so the first datagram from a new address
    *is* the connection event: ``on_channel(channel, addr)`` runs, then
    the datagram is delivered on the fresh channel.
    """

    def __init__(self, on_channel: Callable[[UdpFrameChannel, object], None],
                 max_frame: int = MAX_FRAME_BYTES) -> None:
        self._on_channel = on_channel
        self._max_frame = max_frame
        self.peers: Dict[Tuple[str, int], UdpFrameChannel] = {}
        self._transport: Optional[asyncio.DatagramTransport] = None

    def connection_made(self, transport: asyncio.BaseTransport) -> None:
        self._transport = transport  # type: ignore[assignment]

    def datagram_received(self, data: bytes, addr: Tuple[str, int]) -> None:
        if len(data) > self._max_frame or self._transport is None:
            return   # cannot even be a frame; drop, datagrams are cheap
        channel = self.peers.get(addr)
        if channel is None:
            channel = UdpFrameChannel(self._transport, addr,
                                      registry=self.peers)
            self.peers[addr] = channel
            self._on_channel(channel, addr)
        channel._feed(data)

    def error_received(self, exc: Exception) -> None:
        pass   # per-datagram ICMP errors: connectionless, nothing to tear down

    def connection_lost(self, exc: Optional[Exception]) -> None:
        peers, self.peers = self.peers, {}
        for channel in peers.values():
            channel._mark_closed()


class _DatagramClientProtocol(asyncio.DatagramProtocol):
    """Client side of UDP: one connected socket, one channel."""

    def __init__(self) -> None:
        self.channel: Optional[UdpFrameChannel] = None

    def connection_made(self, transport: asyncio.BaseTransport) -> None:
        self.channel = UdpFrameChannel(
            transport, None, owns_transport=True)  # type: ignore[arg-type]

    def datagram_received(self, data: bytes, addr: Tuple[str, int]) -> None:
        if self.channel is not None:
            self.channel._feed(data)

    def connection_lost(self, exc: Optional[Exception]) -> None:
        if self.channel is not None:
            self.channel._mark_closed()


# ----------------------------------------------------------------------
# Endpoint helpers
# ----------------------------------------------------------------------
async def open_tcp_channel(host: str, port: int) -> TcpFrameChannel:
    """Connect a TCP client channel."""
    loop = asyncio.get_running_loop()
    made: List[TcpFrameChannel] = []
    await loop.create_connection(
        lambda: StreamFrameProtocol(lambda ch, peer: made.append(ch)),
        host, port)
    return made[0]


#: Socket buffer size for UDP endpoints.  One server socket fans in
#: every peer's datagrams; the kernel default (~208 KB, a few hundred
#: skb-charged small datagrams) overflows under an open-loop burst from
#: hundreds of clients, and UDP drops are silent.  4 MB holds thousands.
UDP_SOCKET_BUFFER = 1 << 22


def _udp_socket(bufsize: int = UDP_SOCKET_BUFFER) -> socket.socket:
    sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
    for opt in (socket.SO_RCVBUF, socket.SO_SNDBUF):
        try:
            sock.setsockopt(socket.SOL_SOCKET, opt, bufsize)
        except OSError:
            pass   # best effort: the platform cap applies
    return sock


async def open_udp_channel(host: str, port: int) -> UdpFrameChannel:
    """Open a connected UDP client channel."""
    loop = asyncio.get_running_loop()
    sock = _udp_socket()
    sock.connect((host, port))
    sock.setblocking(False)
    _transport, protocol = await loop.create_datagram_endpoint(
        _DatagramClientProtocol, sock=sock)
    while protocol.channel is None:
        # connection_made is deferred via call_soon; let it run
        await asyncio.sleep(0)
    return protocol.channel


async def start_tcp_server(host: str, port: int,
                           on_channel: Callable[[TcpFrameChannel, object],
                                                None],
                           on_error: Optional[Callable[[Exception], None]]
                           = None) -> asyncio.AbstractServer:
    """Listen for TCP frame channels; returns the asyncio server."""
    loop = asyncio.get_running_loop()
    return await loop.create_server(
        lambda: StreamFrameProtocol(on_channel, on_error=on_error),
        host, port)


async def start_udp_server(host: str, port: int,
                           on_channel: Callable[[UdpFrameChannel, object],
                                                None]
                           ) -> Tuple[asyncio.DatagramTransport,
                                      DatagramFrameRouter]:
    """Bind the UDP frame router; returns (transport, router)."""
    loop = asyncio.get_running_loop()
    sock = _udp_socket()
    sock.bind((host, port))
    sock.setblocking(False)
    transport, router = await loop.create_datagram_endpoint(
        lambda: DatagramFrameRouter(on_channel), sock=sock)
    return transport, router
