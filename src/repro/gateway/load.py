"""Open-loop load client for the gateway.

Drives N *logical clients* against a :class:`GatewayServer` without any
engine of its own — it speaks the shim wire protocol directly (alloc
handshake, data frames carrying delimited fragments), which doubles as
an independent check that the protocol is what the docs say it is.

Open-loop means the send schedule is fixed in advance: every client
sends ``pings`` messages at ``interval`` spacing whether or not replies
have arrived, so a slow server shows up as missing replies, not as a
slower test.  Logical clients are multiplexed over a bounded number of
connections (``conns``) because file descriptors, not protocol state,
are the scarce resource at four digits of concurrency — each client is
one shim *flow*, which is the unit the paper's flow allocation actually
names.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import time
from typing import Any, Dict, List, Optional

from ..core.delimiting import Fragment, Reassembler
from ..shard.framing import FrameFormatError
from .transport import FrameChannel, open_tcp_channel, open_udp_channel
from .wire import decode_shim_frame, frame_to_wire

_ALLOC_RETRY_S = 0.5
_ALLOC_ATTEMPTS = 5


class _LoadFlow:
    """One logical client: one shim flow on one connection."""

    __slots__ = ("conn", "flow_id", "name", "ready", "failed", "sent",
                 "replies", "_reassembler", "_message_ids", "_pending_rpc")

    def __init__(self, conn: "_LoadConn", flow_id: int, name: str) -> None:
        self.conn = conn
        self.flow_id = flow_id
        self.name = name
        self.ready = asyncio.Event()
        self.failed: Optional[str] = None
        self.sent = 0
        self.replies = 0
        self._reassembler = Reassembler()
        self._message_ids = itertools.count()
        self._pending_rpc: set = set()

    def send_alloc(self, dst: str) -> None:
        self.conn.send_frame(("alloc", self.flow_id, (self.name, dst), 16))

    def send_message(self, data: bytes) -> None:
        fragment = Fragment(next(self._message_ids), 0, True, data)
        self.conn.send_frame(("data", self.flow_id, fragment,
                              fragment.wire_size()))
        self.sent += 1

    def send_ping(self, payload: int, workload: str) -> None:
        if workload == "rpc":
            request_id = self.sent + 1
            self._pending_rpc.add(request_id)
            self.send_message(json.dumps(
                {"id": request_id, "method": "echo",
                 "params": {"pad": "x" * payload}}).encode())
        else:
            self.send_message(b"x" * payload)

    def on_data(self, fragment: Any) -> None:
        if not isinstance(fragment, Fragment):
            return
        message = self._reassembler.push(fragment)
        if message is None:
            return
        if self._pending_rpc:
            try:
                reply = json.loads(message.decode())
            except ValueError:
                return
            self._pending_rpc.discard(reply.get("id"))
        self.replies += 1


class _LoadConn:
    """One socket connection multiplexing a batch of logical clients."""

    def __init__(self, channel: FrameChannel) -> None:
        self.channel = channel
        self.flows: Dict[int, _LoadFlow] = {}
        self.wire_errors = 0
        self.closed = asyncio.Event()
        channel.set_receiver(self._on_wire_bytes)
        channel.on_close(self.closed.set)

    def add_flow(self, flow_id: int, name: str) -> _LoadFlow:
        flow = _LoadFlow(self, flow_id, name)
        self.flows[flow_id] = flow
        return flow

    def send_frame(self, frame: Any) -> bool:
        return self.channel.send(frame_to_wire(frame))

    def _on_wire_bytes(self, buf: bytes) -> None:
        try:
            kind, flow_id, payload, _size = decode_shim_frame(buf)
        except FrameFormatError:
            self.wire_errors += 1
            self.channel.close()
            return
        flow = self.flows.get(flow_id)
        if flow is None:
            return
        if kind == "data":
            flow.on_data(payload)
        elif kind == "alloc-ok":
            flow.ready.set()
        elif kind == "alloc-err":
            flow.failed = str(payload)
            flow.ready.set()
        elif kind == "dealloc":
            flow.failed = flow.failed or "deallocated"


async def run_load(host: str, port: int, transport: str = "tcp",
                   clients: int = 100, conns: Optional[int] = None,
                   pings: int = 5, payload: int = 64,
                   interval: float = 0.002, workload: str = "echo",
                   timeout: float = 60.0,
                   server_app: Optional[str] = None) -> Dict[str, Any]:
    """Run one open-loop load session; returns a result row.

    ``clients`` logical clients spread over ``conns`` connections
    (default: ≤64, fd-bounded), each sending ``pings`` messages of
    ``payload`` bytes at ``interval`` spacing, then waiting out
    ``timeout`` wall seconds for the reply tail.
    """
    if transport not in ("tcp", "udp"):
        raise ValueError(f"unknown transport {transport!r}")
    if workload not in ("echo", "rpc"):
        raise ValueError(f"unknown workload {workload!r}")
    if server_app is None:
        server_app = "rpc-server" if workload == "rpc" else "echo-server"
    if conns is None:
        conns = min(clients, 64)
    conns = max(1, min(conns, clients))
    started = time.monotonic()
    deadline = started + timeout

    connections: List[_LoadConn] = []
    for _ in range(conns):
        if transport == "tcp":
            channel: FrameChannel = await open_tcp_channel(host, port)
        else:
            channel = await open_udp_channel(host, port)
        connections.append(_LoadConn(channel))

    # one flow per logical client, round-robin over connections; flow
    # ids are the client side's even series (side 0 of the shim)
    flows: List[_LoadFlow] = []
    per_conn_ids = [itertools.count(2, 2) for _ in connections]
    for index in range(clients):
        conn = connections[index % len(connections)]
        flow_id = next(per_conn_ids[index % len(connections)])
        flows.append(conn.add_flow(flow_id, f"load-{index}"))

    async def allocate(flow: _LoadFlow) -> bool:
        for _attempt in range(_ALLOC_ATTEMPTS):
            flow.send_alloc(server_app)
            try:
                await asyncio.wait_for(flow.ready.wait(), _ALLOC_RETRY_S)
            except asyncio.TimeoutError:
                continue   # datagram (or its answer) lost: resend
            return flow.failed is None
        return False

    alloc_ok = await asyncio.gather(*(allocate(flow) for flow in flows))
    ready_flows = [flow for flow, ok in zip(flows, alloc_ok) if ok]
    alloc_failures = clients - len(ready_flows)

    async def drive(conn: _LoadConn) -> None:
        mine = [flow for flow in conn.flows.values() if flow.failed is None
                and flow.ready.is_set()]
        for _round in range(pings):
            for flow in mine:
                flow.send_ping(payload, workload)
            await asyncio.sleep(interval)

    await asyncio.gather(*(drive(conn) for conn in connections))

    expected = len(ready_flows) * pings

    def replies_done() -> bool:
        return sum(flow.replies for flow in ready_flows) >= expected

    while not replies_done() and time.monotonic() < deadline:
        await asyncio.sleep(0.01)

    for conn in connections:
        for flow in conn.flows.values():
            conn.send_frame(("dealloc", flow.flow_id, None, 0))
        conn.channel.close()

    wall = time.monotonic() - started
    replies = sum(flow.replies for flow in ready_flows)
    sent = sum(flow.sent for flow in flows)
    return {
        "transport": transport,
        "workload": workload,
        "clients": clients,
        "conns": len(connections),
        "alloc_failures": alloc_failures,
        "sent": sent,
        "expected": expected,
        "replies": replies,
        "wire_errors": sum(conn.wire_errors for conn in connections),
        "wall_s": round(wall, 3),
        "replies_per_s": round(replies / wall, 1) if wall > 0 else 0.0,
        "complete": alloc_failures == 0 and replies >= expected,
    }
