"""Bridging the discrete-event engine onto an asyncio event loop.

The simulated engine and an asyncio loop are both event loops; the
difference is who owns time.  :class:`AsyncEngineDriver` supports both
ownership contracts:

* ``mode="wall"`` — wall clock owns time.  A background task maps
  ``loop.time()`` onto the simulated clock and runs due engine events;
  the sleep until the engine's next timer is an actual
  ``loop.call_later`` deadline, pre-empted whenever a socket injects
  work.  This is how :class:`~repro.gateway.server.GatewayServer`
  serves live traffic: EFCP retransmission timers, keepalives, and
  allocation retries fire in real seconds.

* ``mode="fast"`` — causality owns time.  :meth:`run_until` drains due
  events, yields to the loop for socket IO, and fast-forwards the
  simulated clock to the engine's next timer **only when no frame is in
  flight** (senders and receivers report via :meth:`io_begin` /
  :meth:`io_end`).  Idle sim-time compresses to nothing, while a timer
  can never fire ahead of a frame that would have cancelled it — which
  is exactly what makes a socket run reproduce the simulated run's
  transcript, event for event.  With ``record=True`` every clock
  advance and injection lands in :attr:`journal`, the deterministic
  replay transcript.

All engine mutations driven by sockets must go through :meth:`inject`,
which schedules the callback as an ordinary engine event at the current
simulated instant — socket callbacks never touch stack state directly,
so engine-event ordering stays the only ordering there is.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, List, Optional, Tuple

from ..sim.engine import Engine


class AsyncEngineDriver:
    """One engine, one asyncio loop, one time contract."""

    def __init__(self, engine: Engine, mode: str = "wall",
                 time_scale: float = 1.0, idle_grace: float = 0.02,
                 record: bool = False) -> None:
        if mode not in ("wall", "fast"):
            raise ValueError(f"unknown driver mode {mode!r}")
        if time_scale <= 0:
            raise ValueError("time_scale must be positive")
        self.engine = engine
        self.mode = mode
        self.time_scale = time_scale
        self.idle_grace = idle_grace
        #: deterministic-replay transcript: ("advance", sim_time) and
        #: ("inject", label) entries, in execution order
        self.journal: Optional[List[Tuple[str, Any]]] = [] if record else None
        self.injected = 0
        self._inflight = 0
        self._activity = 0
        self._wake_pending = False
        self._waiters: List["asyncio.Future[bool]"] = []
        self._task: Optional["asyncio.Task[None]"] = None
        self._stopped = False

    # ------------------------------------------------------------------
    # Socket-side entry points (called from transport callbacks)
    # ------------------------------------------------------------------
    def inject(self, fn: Callable[..., None], *args: Any,
               label: str = "gw.inject") -> None:
        """Run ``fn(*args)`` inside the engine at the current simulated
        instant, after events already queued for it."""
        self.engine.call_at(self.engine.now, fn, *args, label=label)
        self.injected += 1
        self._activity += 1
        if self.journal is not None:
            self.journal.append(("inject", label))
        self._wake()

    def io_begin(self) -> None:
        """A frame left for the network; fast mode must not fast-forward
        past timers until it lands (or the stall backstop trips)."""
        self._inflight += 1

    def io_end(self) -> None:
        """A frame arrived off the network."""
        self._inflight -= 1
        self._activity += 1
        self._wake()

    @property
    def inflight(self) -> int:
        """Frames sent but not yet received (tracked channels only)."""
        return self._inflight

    # ------------------------------------------------------------------
    # fast mode: causality owns time
    # ------------------------------------------------------------------
    async def run_until(self, predicate: Callable[[], bool],
                        timeout: float = 30.0,
                        horizon: Optional[float] = None) -> bool:
        """Drive the engine until ``predicate()`` holds or ``timeout``
        simulated seconds elapse; returns whether it held.

        ``horizon`` (absolute sim time, default the deadline) bounds how
        far a *fully idle* engine — no due events, no inflight frames,
        no fresh injections — is allowed to jump.  :meth:`settle` uses
        it to make "advance the clock by X" terminate even when nothing
        is scheduled.
        """
        if self.mode != "fast":
            raise RuntimeError("run_until() is a fast-mode API; wall mode "
                               "runs via start()/stop()")
        engine = self.engine
        deadline = engine.now + timeout
        if horizon is None:
            horizon = deadline
        idle_strikes = 0
        stalls = 0
        while True:
            engine.run(until=engine.now)   # drain everything already due
            if predicate():
                return True
            if engine.now >= deadline:
                return predicate()
            if await self._yield_io():
                idle_strikes = 0
                stalls = 0
                continue
            if self._inflight > 0 and stalls < 3:
                # frames are on the wire: wait for them, never jump a
                # timer over them.  The backstop bounds a leaked counter
                # (e.g. a dropped UDP datagram) to a short wall stall.
                if await self._wait_wake(self.idle_grace * 25):
                    stalls = 0
                else:
                    stalls += 1
                idle_strikes = 0
                continue
            nxt = engine.next_event_time()
            if nxt is not None and nxt <= horizon:
                engine.run(until=nxt)
                if self.journal is not None:
                    self.journal.append(("advance", nxt))
                idle_strikes = 0
                continue
            # nothing due inside the horizon: give the OS one grace
            # period to surface bytes before declaring the engine idle
            if await self._wait_wake(self.idle_grace):
                idle_strikes = 0
                continue
            idle_strikes += 1
            if idle_strikes < 2:
                continue
            if horizon > engine.now:
                engine.run(until=horizon)
                if self.journal is not None:
                    self.journal.append(("advance", horizon))
            return predicate()

    async def settle(self, duration: float, timeout_slack: float = 5.0) -> None:
        """Advance the simulated clock by ``duration`` seconds, serving
        whatever IO and timers fall inside the window."""
        target = self.engine.now + duration
        await self.run_until(lambda: self.engine.now >= target,
                             timeout=duration + timeout_slack,
                             horizon=target)

    async def _yield_io(self) -> bool:
        """Let the loop run transport callbacks; True if any injected."""
        before = self._activity
        for _ in range(2):
            await asyncio.sleep(0)
        return self._activity != before

    # ------------------------------------------------------------------
    # wall mode: wall clock owns time
    # ------------------------------------------------------------------
    def start(self) -> "asyncio.Task[None]":
        """Launch the wall-clock pump task (idempotent per driver)."""
        if self.mode != "wall":
            raise RuntimeError("start() is a wall-mode API; fast mode "
                               "runs via run_until()")
        if self._task is not None and not self._task.done():
            return self._task
        self._stopped = False
        self._task = asyncio.get_running_loop().create_task(
            self._wall_loop(), name="gateway-engine")
        return self._task

    async def stop(self) -> None:
        """Stop the wall-clock pump and wait for it to exit."""
        self._stopped = True
        self._wake()
        if self._task is not None:
            await self._task
            self._task = None

    async def _wall_loop(self) -> None:
        loop = asyncio.get_running_loop()
        engine = self.engine
        wall0 = loop.time()
        sim0 = engine.now
        while not self._stopped:
            target = sim0 + (loop.time() - wall0) * self.time_scale
            if target > engine.now:
                engine.run(until=target)
            else:
                engine.run(until=engine.now)
            nxt = engine.next_event_time()
            if nxt is None:
                # no timers pending: sleep until an injection wakes us
                # (bounded, so shutdown and drift checks stay prompt)
                await self._wait_wake(0.2)
                continue
            now_sim = sim0 + (loop.time() - wall0) * self.time_scale
            delay = (nxt - now_sim) / self.time_scale
            if delay <= 0:
                await asyncio.sleep(0)   # due now — just yield for IO
            else:
                await self._wait_wake(min(delay, 0.2))

    # ------------------------------------------------------------------
    # Wakeups: a loop.call_later deadline racing socket activity
    # ------------------------------------------------------------------
    def _wake(self) -> None:
        woke = False
        for waiter in self._waiters:
            if not waiter.done():
                waiter.set_result(True)
                woke = True
        del self._waiters[:]
        if not woke:
            self._wake_pending = True

    async def _wait_wake(self, timeout: float) -> bool:
        """Sleep until woken by socket activity (True) or until the
        ``loop.call_later`` deadline fires (False)."""
        if self._wake_pending:
            self._wake_pending = False
            await asyncio.sleep(0)
            return True
        loop = asyncio.get_running_loop()
        waiter: "asyncio.Future[bool]" = loop.create_future()
        self._waiters.append(waiter)
        handle = loop.call_later(timeout, self._expire, waiter)
        try:
            return await waiter
        finally:
            handle.cancel()
            if waiter in self._waiters:
                self._waiters.remove(waiter)

    @staticmethod
    def _expire(waiter: "asyncio.Future[bool]") -> None:
        if not waiter.done():
            waiter.set_result(False)
