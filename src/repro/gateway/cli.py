"""The ``repro gateway`` subcommand: serve, load, conformance.

Usage::

    python -m repro gateway serve [--host H] [--tcp-port P] [--udp-port P]
                                  [--duration S]
    python -m repro gateway load  [--host H] --port P [--transport tcp|udp]
                                  [--clients N] [--conns N] [--pings N]
                                  [--payload B] [--interval S]
                                  [--workload echo|rpc] [--timeout S]
    python -m repro gateway conformance [--pings N] [--rpc-calls N]

``serve`` hosts the apps/ suite on real sockets; ``load`` drives an
open-loop client fleet against one; ``conformance`` runs the
socket-vs-simulated transcript check and prints both fingerprints.
"""

from __future__ import annotations

import asyncio
import json
import sys
from typing import Callable, Dict, List, Optional, Tuple


def _parse_flags(args: List[str], spec: Dict[str, Callable[[str], object]]
                 ) -> Tuple[Optional[Dict[str, object]], Optional[str]]:
    """Parse ``--flag value`` pairs per ``spec`` (flag → converter).

    Returns (values, None) on success or (None, error message).
    """
    values: Dict[str, object] = {}
    index = 0
    while index < len(args):
        flag = args[index]
        if flag not in spec:
            return None, f"unknown flag {flag!r}"
        index += 1
        if index >= len(args):
            return None, f"{flag} requires a value"
        try:
            values[flag.lstrip("-").replace("-", "_")] = spec[flag](args[index])
        except ValueError as exc:
            return None, f"{flag}: {exc}"
        index += 1
    return values, None


def _serve_main(args: List[str]) -> int:
    from .server import GatewayServer
    values, error = _parse_flags(args, {
        "--host": str, "--tcp-port": int, "--udp-port": int,
        "--duration": float})
    if values is None:
        print(f"gateway serve: {error}", file=sys.stderr)
        return 2
    duration = values.pop("duration", None)
    server = GatewayServer(**values)   # type: ignore[arg-type]

    async def _run() -> None:
        await server.start()
        print(f"gateway serving {', '.join(a for a in ('echo', 'rpc', 'pubsub'))} "
              f"on {server.host} tcp={server.tcp_port} udp={server.udp_port}",
              flush=True)
        try:
            if duration is None:
                while True:
                    await asyncio.sleep(3600)
            else:
                await asyncio.sleep(float(duration))
        finally:
            await server.stop()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        pass
    return 0


def _load_main(args: List[str]) -> int:
    from .load import run_load
    values, error = _parse_flags(args, {
        "--host": str, "--port": int, "--transport": str, "--clients": int,
        "--conns": int, "--pings": int, "--payload": int,
        "--interval": float, "--workload": str, "--timeout": float})
    if values is None:
        print(f"gateway load: {error}", file=sys.stderr)
        return 2
    if "port" not in values:
        print("gateway load: --port is required", file=sys.stderr)
        return 2
    host = values.pop("host", "127.0.0.1")
    port = values.pop("port")
    try:
        row = asyncio.run(run_load(str(host), int(port), **values))  # type: ignore[arg-type]
    except (ValueError, OSError) as exc:
        print(f"gateway load: {exc}", file=sys.stderr)
        return 2
    print(json.dumps(row, indent=2, sort_keys=True))
    return 0 if row["complete"] else 1


def _conformance_main(args: List[str]) -> int:
    from .conformance import (SessionSpec, run_simulated_session,
                              run_socket_session, strip_private,
                              transcript_fingerprint)
    values, error = _parse_flags(args, {
        "--pings": int, "--rpc-calls": int, "--payload": int})
    if values is None:
        print(f"gateway conformance: {error}", file=sys.stderr)
        return 2
    spec = SessionSpec(**values)   # type: ignore[arg-type]
    simulated = strip_private(run_simulated_session(spec))
    socketed = strip_private(run_socket_session(spec))
    sim_fp = transcript_fingerprint(simulated)
    sock_fp = transcript_fingerprint(socketed)
    frames = sum(len(v) for v in simulated.values())
    print(f"simulated: {sim_fp}  ({frames} frames)")
    print(f"socket:    {sock_fp}")
    if sim_fp != sock_fp:
        print("CONFORMANCE VIOLATION: transcripts differ", file=sys.stderr)
        return 1
    print("transcripts identical")
    return 0


def gateway_main(argv: List[str]) -> int:
    """The ``gateway`` subcommand dispatcher."""
    if not argv or argv[0] in ("help", "--help", "-h"):
        print(__doc__.strip())
        return 0 if argv else 2
    command = argv[0]
    if command == "serve":
        return _serve_main(argv[1:])
    if command == "load":
        return _load_main(argv[1:])
    if command == "conformance":
        return _conformance_main(argv[1:])
    print(f"unknown gateway subcommand {command!r} (serve|load|conformance)",
          file=sys.stderr)
    return 2
