"""repro — executable reproduction of "Networking is IPC" (Day, Matta,
Mattar; BUCS-TR-2008-019, 2008).

Packages
--------
``repro.sim``
    Deterministic discrete-event substrate (links, nodes, topologies).
``repro.core``
    The paper's architecture: recursive DIFs, EFCP, RIEP, enrollment,
    two-step routing, flow allocation.
``repro.baselines``
    A "current Internet" stack (IP/TCP/UDP/DNS/NAT/Mobile-IP/SCTP) built on
    the same substrate, for the §6 comparisons.
``repro.apps``
    Applications written against the IPC API (and the sockets foil).
``repro.experiments``
    Scenario builders and metric harnesses behind ``benchmarks/``.
"""

__version__ = "1.0.0"
