#!/usr/bin/env python3
"""§4 live: network management is just the management task set.

The paper folds management into every IPC process — "an IPC Management,
which implements RIEP to query and update a Resource Information Base".
So a network-management station is *an application of the DIF* reading
other members' RIBs with plain RIEP ``M_READ``s — no SNMP, no separate
management network, and (per §6.1) nothing an outsider can touch.

This example builds a five-system provider DIF, runs some traffic, then
has the station at the edge walk every member's RIB and print an
inventory table.

Run:  python examples/management.py
"""

from repro.apps import EchoClient, EchoServer
from repro.core import (Dif, DifPolicies, Orchestrator, add_shims,
                        build_dif_over, make_systems, run_until, shim_between)
from repro.experiments.common import format_table
from repro.sim.network import Network

PROBE_OBJECTS = ["/ipcp/name", "/routing/table-size", "/directory/size",
                 "/flows/count", "/stats/rmt", "/neighbors"]


def main() -> None:
    network = Network(seed=11)
    for name in ("station", "core", "edge1", "edge2", "server-host"):
        network.add_node(name)
    for name in ("station", "edge1", "edge2", "server-host"):
        network.connect(name, "core", delay=0.002)
    systems = make_systems(network)
    add_shims(systems, network)

    dif = Dif("provider", DifPolicies(keepalive_interval=1.0))
    orchestrator = Orchestrator(network)
    build_dif_over(orchestrator, dif, systems, adjacencies=[
        (name, "core", shim_between(network, name, "core"))
        for name in ("station", "edge1", "edge2", "server-host")],
        bootstrap="core")
    orchestrator.run(timeout=60)
    print(f"provider DIF up: {dif.member_count()} members")

    # some real traffic so the RIBs have something to say
    EchoServer(systems["server-host"])
    network.run(until=network.engine.now + 0.5)
    client = EchoClient(systems["edge1"])
    run_until(network, lambda: client.waiter.done(), timeout=15)
    for _ in range(25):
        client.ping(300)
    run_until(network, lambda: client.replies >= 25, timeout=30)

    # the management walk: read every member's RIB over RIEP
    station = systems["station"].ipcp("provider")
    rows = []
    for address in sorted(dif.members()):
        if address == station.address:
            continue
        record = {"member": str(address)}
        pending = []
        for obj in PROBE_OBJECTS:
            done = []

            def on_reply(reply, key=obj, rec=record, box=done):
                rec[key] = reply.value if reply is not None and reply.ok \
                    else "?"
                box.append(1)
            station.remote_read(address, obj, on_reply)
            pending.append(done)
        run_until(network, lambda: all(p for p in pending), timeout=15)
        rows.append(record)
    print()
    print(format_table(rows, title="RIB inventory read over RIEP "
                                   "(addresses shown are DIF-internal)"))
    print()
    relays = [r for r in rows if isinstance(r.get("/stats/rmt"), dict)
              and r["/stats/rmt"]["relayed"] > 0]
    print(f"{len(relays)} member(s) relayed traffic; the echo flow's state "
          f"appears only at the endpoints' '/flows/count'.")


if __name__ == "__main__":
    main()
