#!/usr/bin/env python3
"""Figure 4 live: multihoming by two-step routing, vs TCP and SCTP.

A host holds two attachments to its provider; steady request/response
traffic flows; the primary link is cut mid-stream.  Watch:

* the DIF flow survive with an outage bounded by the keepalive policy —
  routing's step one (next hop) never changes, step two (PoA selection)
  just picks the surviving attachment;
* the TCP connection die (it *is* the dead interface's address);
* the SCTP association limp over after transport-layer heartbeats.

Run:  python examples/multihoming_failover.py
"""

from repro.experiments.common import format_table
from repro.experiments.e4_multihoming import run_rina, run_sctp, run_tcp


def main() -> None:
    rows = []
    for keepalive in (0.1, 0.2, 0.5):
        row = run_rina(keepalive_interval=keepalive)
        rows.append(row)
        print(f"  RINA ka={keepalive}s: survived={row['survived']}, "
              f"outage={row['outage_s']:.2f}s "
              f"(detection budget {row['detection_budget_s']:.1f}s)")
    tcp_row = run_tcp()
    rows.append(tcp_row)
    print(f"  TCP: survived={tcp_row['survived']}, "
          f"aborted {tcp_row['aborted_at_s']:.0f}s after the failure"
          if tcp_row["aborted_at_s"] is not None else
          f"  TCP: survived={tcp_row['survived']}")
    sctp_row = run_sctp()
    rows.append(sctp_row)
    print(f"  SCTP: survived={sctp_row['survived']}, "
          f"outage={sctp_row['outage_s']:.2f}s")
    print()
    print(format_table(rows, title="Fig 4 reproduction: failover at t=2s"))
    print()
    print("The RINA outage is a policy knob (keepalive interval) of the")
    print("facility — not a new protocol; TCP cannot recover at all;")
    print("SCTP recovers by doing 'degenerate routing' at the transport.")


if __name__ == "__main__":
    main()
