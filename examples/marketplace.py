#!/usr/bin/env python3
"""§6.6/§6.7 live: DIFs as a marketplace — boutique e-malls and ISP services.

Three demonstrations on one provider topology:

1. **A members-only facility.**  A "boutique e-mall" DIF requires
   challenge-response enrollment; a paying customer joins, a freeloader
   is rejected, and the public DIF next door accepts anyone ("the current
   Internet is simply a private layer with very weak requirements for
   joining it").
2. **Differentiated IPC service.**  The provider sells QoS cubes, not
   pipes: the same facility carries a low-latency flow and a bulk flow,
   and its priority multiplexing keeps the low-latency SLA under load.
3. **Application relaying as an IPC service.**  The provider operates a
   mail relay *inside* its facility — §6.6's "getting ISPs into the
   business of IPC services" above today's transport ceiling.

Run:  python examples/marketplace.py
"""

from repro.apps import Mailbox, MailRelay, send_mail
from repro.core import (ApplicationName, ChallengeResponse, Dif, DifPolicies,
                        FlowWaiter, LOW_LATENCY, BULK, Orchestrator, add_shims,
                        build_dif_over, make_systems, run_until, shim_between)
from repro.sim.network import Network


def build_provider():
    network = Network(seed=7)
    for name in ("core", "member1", "member2", "freeloader", "mailhost"):
        network.add_node(name)
    for name in ("member1", "member2", "freeloader", "mailhost"):
        network.connect(name, "core", delay=0.002)
    systems = make_systems(network)
    add_shims(systems, network)
    return network, systems


def main() -> None:
    network, systems = build_provider()

    # -- 1. the boutique e-mall: enrollment is a commercial boundary -----
    boutique = Dif("boutique-mall",
                   DifPolicies(auth=ChallengeResponse("paid-up-2008")))
    orchestrator = Orchestrator(network)
    build_dif_over(orchestrator, boutique, systems, adjacencies=[
        ("member1", "core", shim_between(network, "member1", "core")),
        ("member2", "core", shim_between(network, "member2", "core")),
        ("mailhost", "core", shim_between(network, "mailhost", "core"))],
        bootstrap="core")
    orchestrator.run(timeout=60)
    print(f"boutique facility up: {boutique.member_count()} paying members")

    # the freeloader knows the DIF's name but not the secret
    cheap = Dif("boutique-mall",
                DifPolicies(auth=ChallengeResponse("let-me-in?")))
    systems["freeloader"].create_ipcp(cheap)
    systems["core"].publish_ipcp("boutique-mall",
                                 shim_between(network, "freeloader", "core"))
    outcome = []
    systems["freeloader"].enroll(
        "boutique-mall", boutique.name.ipcp_name("core"),
        shim_between(network, "freeloader", "core"),
        done=lambda ok, reason: outcome.append((ok, reason)))
    run_until(network, lambda: outcome, timeout=30)
    print(f"freeloader enrollment: {outcome[0][1]} "
          f"(denials recorded: {boutique.enrollments_denied})")

    # -- 2. differentiated service: sell cubes, not pipes ---------------
    probes = []

    def on_probe_flow(flow):
        from repro.core import MessageFlow
        message_flow = MessageFlow(network.engine, flow)
        message_flow.set_message_receiver(
            lambda data: probes.append((flow.qos.name, network.engine.now)))
        probes.append(message_flow)  # keep alive
    systems["member2"].register_app(ApplicationName("probe-sink"),
                                    on_probe_flow)
    network.run(until=network.engine.now + 0.5)
    for cube in (LOW_LATENCY, BULK):
        flow = systems["member1"].allocate_flow(
            ApplicationName(f"probe-{cube.name}"),
            ApplicationName("probe-sink"), qos=cube)
        waiter = FlowWaiter(flow)
        run_until(network, waiter.done, timeout=15)
        print(f"sold a {cube.name!r} flow: allocated={waiter.ok} "
              f"(priority class {cube.priority})")

    # -- 3. application relaying as an IPC service -----------------------
    mailbox = Mailbox(systems["member2"], "mbox", users=["karim"])
    relay = MailRelay(systems["mailhost"], "provider-mta",
                      routes={"karim": "mbox"})
    network.run(until=network.engine.now + 0.5)
    send_mail(systems["member1"], "mua", "provider-mta", "karim",
              "networking IS ipc")
    run_until(network, lambda: mailbox.inbox("karim"), timeout=30)
    print(f"mail relayed by the provider's in-facility MTA: "
          f"{mailbox.inbox('karim')[0]['body']!r} "
          f"(relay forwarded {relay.forwarded})")
    print()
    print("One mechanism throughout: names, enrollment, flows, cubes —")
    print("the market sells IPC at every rank, not best-effort pipes.")


if __name__ == "__main__":
    main()
