#!/usr/bin/env python3
"""Quickstart: the paper's Figure 1 in ~60 lines.

Two hosts, one wire, one Distributed IPC Facility.  A server registers an
application *name*; a client allocates a flow *to that name* with a QoS
cube, and talks.  Nobody ever sees an address — that is the whole §3.1
interface.

Run:  python examples/quickstart.py
"""

from repro.core import (ApplicationName, Dif, DifPolicies, FlowWaiter,
                        MessageFlow, Orchestrator, RELIABLE, add_shims,
                        build_dif_over, make_systems, run_until, shim_between)
from repro.sim.network import Network


def main() -> None:
    # 1. physical plant: two systems and a 10 Mb/s wire
    network = Network(seed=42)
    network.add_node("alpha")
    network.add_node("beta")
    network.connect("alpha", "beta", capacity_bps=1e7, delay=0.002)

    # 2. systems + rank-0 shim DIFs over each link
    systems = make_systems(network)
    add_shims(systems, network)

    # 3. one DIF spanning the wire: bootstrap alpha, enroll beta (§5.1/§5.2)
    dif = Dif("demo-net", DifPolicies())
    orchestrator = Orchestrator(network)
    build_dif_over(orchestrator, dif, systems, adjacencies=[
        ("alpha", "beta", shim_between(network, "alpha", "beta"))])
    orchestrator.run(timeout=30)
    print(f"DIF {dif.name} is up with {dif.member_count()} members; "
          f"addresses are internal: "
          f"{sorted(str(a) for a in dif.members())}")

    # 4. the server side: register a NAME (no port numbers, no addresses)
    greetings = []

    def on_inbound(flow):
        message_flow = MessageFlow(network.engine, flow)

        def on_message(data: bytes) -> None:
            greetings.append(data)
            message_flow.send_message(b"hello, " + data + b"!")
        message_flow.set_message_receiver(on_message)
        globals().setdefault("_keep", []).append(message_flow)

    systems["beta"].register_app(ApplicationName("greeter"), on_inbound)
    network.run(until=network.engine.now + 0.5)

    # 5. the client side: allocate a flow BY NAME with a QoS cube
    flow = systems["alpha"].allocate_flow(ApplicationName("quickstart-client"),
                                          ApplicationName("greeter"),
                                          qos=RELIABLE)
    waiter = FlowWaiter(flow)
    run_until(network, waiter.done, timeout=10)
    print(f"flow allocated: port={flow.port_id!r} qos={flow.qos.name!r} "
          f"(a local handle — not a well-known port)")

    replies = []
    client = MessageFlow(network.engine, flow)
    client.set_message_receiver(replies.append)
    client.send_message(b"world")
    run_until(network, lambda: replies, timeout=10)
    print("server saw:   ", greetings[0].decode())
    print("client got:   ", replies[0].decode())
    print(f"simulated time: {network.engine.now:.3f}s, "
          f"events: {network.engine.events_processed}")


if __name__ == "__main__":
    main()
