#!/usr/bin/env python3
"""Figure 3 live: repeat the IPC layer over a lossy wireless scope.

Builds ``sender —(60 ms WAN)— border —(lossy radio)— mobile`` twice:

* once with a single internet-wide DIF (end-to-end recovery only),
* once with an extra 2-member wireless DIF whose EFCP policies are tuned
  to the radio (5 ms retransmission floor),

then transfers the same file through both at increasing loss and prints
the goodput table — §6.2's "proxies are a kludge; scoped layers are the
architecture" argument, measured.

Run:  python examples/recursive_wireless.py
"""

from repro.experiments.common import format_table
from repro.experiments.e3_scoped_recovery import run_transfer


def main() -> None:
    rows = []
    for loss in (0.0, 0.1, 0.2, 0.3):
        for config in ("e2e", "scoped"):
            row = run_transfer(config, loss, total_bytes=100_000)
            rows.append(row)
            print(f"  {config:>6} at loss={loss:.0%}: "
                  f"{row['goodput_mbps']:.2f} Mb/s "
                  f"(top-layer retransmissions: {row['top_layer_retx']})")
    print()
    print(format_table(rows, title="Fig 3 reproduction: scoped recovery"))
    print()
    e2e = {r["loss"]: r for r in rows if r["config"] == "e2e"}
    scoped = {r["loss"]: r for r in rows if r["config"] == "scoped"}
    for loss in (0.1, 0.2, 0.3):
        gain = scoped[loss]["goodput_mbps"] / e2e[loss]["goodput_mbps"]
        print(f"at {loss:.0%} wireless loss the scoped stack delivers "
              f"{gain:.1f}x the goodput")


if __name__ == "__main__":
    main()
