#!/usr/bin/env python3
"""The scenario harness in two acts.

**Act 1 — declarative storm.**  The canned ``fault-storm`` spec composes
all five fault injectors (link flap, loss/delay degradation, congestion
burst, partition/heal, node crash with re-enrollment) over a grid
carrying an echo probe and a bulk transfer, and runs it on both the
recursive-IPC stack and the IP baseline — twice each, verifying the runs
are byte-identical (the determinism contract of the test suite).

**Act 2 — injectors amid a handover.**  The injectors are ordinary
engine-scheduled actors, so they compose with the bespoke experiments
too: here the Fig 5 mobility stack performs its inter-region handover
while a link-flap storm batters the radio it is leaving *and* the one it
is moving to — mobility plus failures as ordinary layer operations, which
is the paper's whole point.

Run:  python examples/fault_storm.py
"""

from repro.apps.echo import EchoClient, EchoServer
from repro.core import run_until
from repro.experiments.common import delivery_gap, format_table
from repro.experiments.e5_mobility import RinaMobilityScenario
from repro.scenarios import (FaultContext, FaultSpec, ScenarioRunner,
                             fault_storm, make_injector)


def act_one() -> None:
    spec = fault_storm()
    print(f"act 1: '{spec.name}' — {spec.description}")
    rows = []
    for stack in ("rina", "ip"):
        first = ScenarioRunner(spec, seed=7)
        metrics = first.run(stack)
        second = ScenarioRunner(spec, seed=7)
        second.run(stack)
        rows.append({
            "stack": stack,
            "echo": f"{metrics['echo_delivered']}/{metrics['echo_sent']}",
            "transfer_done": metrics["transfers_completed"] == 1,
            "worst_outage_s": metrics["worst_outage_s"],
            "deterministic": first.trace == second.trace,
        })
    print(format_table(rows, title="five injectors, both stacks, two runs"))
    print()


def act_two() -> None:
    print("act 2: flapping radios during the Fig 5 inter-region handover")
    scenario = RinaMobilityScenario(seed=1)
    network = scenario.network
    EchoServer(scenario.systems["m"], dif_names=["metro"])
    network.run(until=network.engine.now + 1.0)
    client = EchoClient(scenario.systems["c"], dif_name="metro")
    run_until(network, lambda: client.waiter.done(), timeout=15)

    deliveries = []
    original = client.message_flow._receiver

    def on_reply(data: bytes) -> None:
        deliveries.append(network.engine.now)
        original(data)
    client.message_flow.set_message_receiver(on_reply)

    stop = [False]

    def pump() -> None:
        if not stop[0]:
            client.ping(120)
            network.engine.call_later(0.05, pump)
    pump()
    network.run(until=network.engine.now + 1.0)

    # the storm: flap the radio being vacated and the one being joined,
    # through the same injectors the declarative harness uses
    t0 = network.engine.now
    ctx = FaultContext(network)
    for spec in (FaultSpec(kind="link-flap", target="radio:bs1", at=0.1,
                           duration=0.4, flaps=2, period=1.0),
                 FaultSpec(kind="link-flap", target="radio:bs3", at=0.3,
                           duration=0.3)):
        make_injector(spec).arm(ctx, t0)

    outcome = []
    scenario.snapshot()
    scenario.move_inter_region(outcome)
    network.run(until=t0 + 8.0)
    stop[0] = True

    gap = delivery_gap(deliveries, t0)
    survived = client.flow.allocated and any(t > t0 for t in deliveries)
    flaps = len(network.tracer.events("fault"))
    print(f"  handover completed: {bool(outcome) and outcome[0][0]}")
    print(f"  flow survived the storm: {survived}")
    print(f"  worst delivery gap through storm+handover: {gap:.2f}s")
    print(f"  fault phases injected: {flaps}, "
          f"routing updates: {scenario.lsa_delta()}")


def main() -> None:
    act_one()
    act_two()


if __name__ == "__main__":
    main()
