#!/usr/bin/env python3
"""Figure 5 live: mobility is dynamic multihoming.

A mobile holds an echo session with a correspondent across three DIFs of
different rank.  It then moves twice:

1. base station BS1 → BS2 inside region 1 — only region1's four members
   see routing updates; the metro DIF is untouched;
2. region 1 → region 2 — the mobile enrolls in region2, re-homes its
   metro adjacency through it, and drops the old radio; updates reach the
   metro DIF but the flow survives.

The same moves are then replayed on the identical physical plant under
Mobile-IP, showing the registration signalling and the permanent
triangle-routing stretch.

Run:  python examples/mobility_handover.py
"""

from repro.experiments.common import format_table
from repro.experiments.e5_mobility import run_mobileip, run_rina


def main() -> None:
    print("building the three-DIF stack (region1, region2, metro)...")
    rina_rows = run_rina()
    for row in rina_rows:
        print(f"  [rina] {row['move']}: survived={row['flow_survived']}, "
              f"outage={row['outage_s']:.2f}s, updates: "
              f"region1={row['updates_region1']} "
              f"region2={row['updates_region2']} "
              f"metro={row['updates_metro']}")
    print("replaying under Mobile-IP...")
    mip_rows = run_mobileip()
    for row in mip_rows:
        print(f"  [mip ] {row['move']}: survived={row['flow_survived']}, "
              f"outage={row['outage_s']:.2f}s, "
              f"registrations={row['registration_msgs']}, "
              f"path stretch={row['stretch']:.1f}x")
    print()
    print(format_table(rina_rows + mip_rows,
                       columns=["stack", "move", "flow_survived", "outage_s",
                                "updates_region1", "updates_region2",
                                "updates_metro", "registration_msgs",
                                "stretch"],
                       title="Fig 5 reproduction"))
    print()
    print("Fig 5's argument, measured: a local move updates only the DIF")
    print("whose scope it crosses; Mobile-IP keeps sessions alive too, but")
    print("pays registration signalling and permanent path stretch, and the")
    print("home agent is a single point of failure.")


if __name__ == "__main__":
    main()
