"""AsyncEngineDriver: both time-ownership contracts.

Fast mode must honor causality (never jump a timer over an inflight
frame, compress idle sim-time to nothing, journal every advance); wall
mode must run engine timers in real seconds and stay interruptible by
injections.
"""

import asyncio

import pytest

from repro.gateway.driver import AsyncEngineDriver
from repro.sim.engine import Engine


def run(coro):
    return asyncio.run(coro)


class TestConstruction:
    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            AsyncEngineDriver(Engine(), mode="warp")

    def test_rejects_bad_time_scale(self):
        with pytest.raises(ValueError):
            AsyncEngineDriver(Engine(), time_scale=0)

    def test_mode_apis_are_exclusive(self):
        async def main():
            fast = AsyncEngineDriver(Engine(), mode="fast")
            with pytest.raises(RuntimeError):
                fast.start()
            wall = AsyncEngineDriver(Engine(), mode="wall")
            with pytest.raises(RuntimeError):
                await wall.run_until(lambda: True)
        run(main())


class TestFastMode:
    def test_fast_forwards_to_timers(self):
        engine = Engine()
        driver = AsyncEngineDriver(engine, mode="fast")
        fired = []
        engine.call_later(5.0, lambda: fired.append(engine.now))

        async def main():
            assert await driver.run_until(lambda: bool(fired), timeout=30.0)
        run(main())
        assert fired == [5.0]
        assert engine.now == 5.0

    def test_timer_chains_run_in_order(self):
        engine = Engine()
        driver = AsyncEngineDriver(engine, mode="fast")
        order = []
        engine.call_later(1.0, lambda: order.append("a"))
        engine.call_later(2.0, lambda: (order.append("b"),
                                        engine.call_later(
                                            1.5, lambda: order.append("c"))))

        async def main():
            assert await driver.run_until(lambda: len(order) == 3)
        run(main())
        assert order == ["a", "b", "c"]
        assert engine.now == 3.5

    def test_timeout_returns_false(self):
        engine = Engine()
        driver = AsyncEngineDriver(engine, mode="fast")

        async def main():
            return await driver.run_until(lambda: False, timeout=0.5)
        assert run(main()) is False

    def test_inject_runs_inside_engine(self):
        engine = Engine()
        driver = AsyncEngineDriver(engine, mode="fast")
        seen = []

        async def main():
            driver.inject(lambda: seen.append(engine.now))
            assert await driver.run_until(lambda: bool(seen))
        run(main())
        assert seen == [0.0]

    def test_injections_preserve_order(self):
        engine = Engine()
        driver = AsyncEngineDriver(engine, mode="fast")
        order = []

        async def main():
            for index in range(10):
                driver.inject(order.append, index)
            assert await driver.run_until(lambda: len(order) == 10)
        run(main())
        assert order == list(range(10))

    def test_inflight_blocks_fast_forward(self):
        """A timer must not fire while a tracked frame is on the wire:
        the driver waits for io_end before jumping the clock."""
        engine = Engine()
        driver = AsyncEngineDriver(engine, mode="fast", idle_grace=0.005)
        fired = []
        engine.call_later(1.0, lambda: fired.append("timer"))

        async def main():
            driver.io_begin()
            assert driver.inflight == 1

            async def land_late():
                await asyncio.sleep(0.03)
                assert not fired   # clock still pinned at 0
                driver.io_end()
                driver.inject(fired.append, "frame")
            lander = asyncio.get_running_loop().create_task(land_late())
            assert await driver.run_until(lambda: len(fired) == 2)
            await lander
        run(main())
        assert fired == ["frame", "timer"]

    def test_settle_advances_exactly(self):
        engine = Engine()
        driver = AsyncEngineDriver(engine, mode="fast")

        async def main():
            await driver.settle(2.5)
        run(main())
        assert engine.now == 2.5

    def test_settle_serves_timers_inside_window(self):
        engine = Engine()
        driver = AsyncEngineDriver(engine, mode="fast")
        fired = []
        engine.call_later(1.0, lambda: fired.append(1))
        engine.call_later(9.0, lambda: fired.append(9))

        async def main():
            await driver.settle(2.0)
        run(main())
        assert fired == [1]
        assert engine.now == 2.0

    def test_journal_records_advances_and_injections(self):
        engine = Engine()
        driver = AsyncEngineDriver(engine, mode="fast", record=True)
        engine.call_later(1.0, lambda: None)

        async def main():
            driver.inject(lambda: None, label="test.mark")
            await driver.settle(2.0)
        run(main())
        assert ("inject", "test.mark") in driver.journal
        advances = [t for op, t in driver.journal if op == "advance"]
        assert advances == [1.0, 2.0]

    def test_journal_off_by_default(self):
        driver = AsyncEngineDriver(Engine(), mode="fast")
        assert driver.journal is None


class TestWallMode:
    def test_timers_fire_in_wall_time(self):
        engine = Engine()
        driver = AsyncEngineDriver(engine, mode="wall")
        fired = []
        engine.call_later(0.05, lambda: fired.append(engine.now))

        async def main():
            driver.start()
            deadline = asyncio.get_running_loop().time() + 2.0
            while not fired and asyncio.get_running_loop().time() < deadline:
                await asyncio.sleep(0.01)
            await driver.stop()
        run(main())
        assert fired and fired[0] >= 0.05

    def test_injection_preempts_idle_sleep(self):
        engine = Engine()
        driver = AsyncEngineDriver(engine, mode="wall")
        seen = []

        async def main():
            driver.start()
            await asyncio.sleep(0.01)   # pump is now idle-sleeping
            driver.inject(seen.append, "poke")
            deadline = asyncio.get_running_loop().time() + 2.0
            while not seen and asyncio.get_running_loop().time() < deadline:
                await asyncio.sleep(0.005)
            await driver.stop()
        run(main())
        assert seen == ["poke"]

    def test_start_is_idempotent(self):
        engine = Engine()
        driver = AsyncEngineDriver(engine, mode="wall")

        async def main():
            first = driver.start()
            assert driver.start() is first
            await driver.stop()
        run(main())

    def test_stop_then_restart(self):
        engine = Engine()
        driver = AsyncEngineDriver(engine, mode="wall")
        seen = []

        async def main():
            driver.start()
            await driver.stop()
            driver.start()
            driver.inject(seen.append, 1)
            await asyncio.sleep(0.05)
            await driver.stop()
        run(main())
        assert seen == [1]
