"""Unit tests for simulated links and loss models."""

import random

import pytest

from repro.sim.engine import Engine
from repro.sim.link import (GilbertElliott, Link, NoLoss, SignalLoss,
                            UniformLoss, WirelessLink)


def make_link(**kwargs):
    engine = Engine()
    link = Link(engine, "test", **kwargs)
    inbox_a, inbox_b = [], []
    link.ends[0].attach(lambda p, s: inbox_a.append((engine.now, p, s)))
    link.ends[1].attach(lambda p, s: inbox_b.append((engine.now, p, s)))
    return engine, link, inbox_a, inbox_b


class TestDelivery:
    def test_one_frame_arrives_at_peer(self):
        engine, link, inbox_a, inbox_b = make_link()
        link.ends[0].send("hello", 100)
        engine.run()
        assert [(p, s) for _, p, s in inbox_b] == [("hello", 100)]
        assert inbox_a == []

    def test_delivery_time_is_serialization_plus_propagation(self):
        engine, link, _a, inbox_b = make_link(capacity_bps=1e6, delay=0.01)
        link.ends[0].send("x", 1250)  # 1250 B at 1 Mb/s = 10 ms
        engine.run()
        assert inbox_b[0][0] == pytest.approx(0.02)

    def test_back_to_back_frames_serialize_sequentially(self):
        engine, link, _a, inbox_b = make_link(capacity_bps=1e6, delay=0.0)
        link.ends[0].send("one", 1250)
        link.ends[0].send("two", 1250)
        engine.run()
        times = [t for t, _p, _s in inbox_b]
        assert times == pytest.approx([0.01, 0.02])

    def test_full_duplex_directions_independent(self):
        engine, link, inbox_a, inbox_b = make_link(capacity_bps=1e6, delay=0.0)
        link.ends[0].send("to-b", 1250)
        link.ends[1].send("to-a", 1250)
        engine.run()
        assert inbox_a[0][0] == pytest.approx(0.01)
        assert inbox_b[0][0] == pytest.approx(0.01)

    def test_queue_limit_tail_drop(self):
        engine, link, _a, inbox_b = make_link(queue_limit=2, capacity_bps=1e6)
        results = [link.ends[0].send(str(i), 1000) for i in range(5)]
        engine.run()
        # one in service leaves as queue slots free up; only rejects count
        assert results.count(False) >= 1
        assert link.frames_dropped_queue[0] == results.count(False)
        assert len(inbox_b) == results.count(True)

    def test_zero_size_frame_rejected(self):
        engine, link, _a, _b = make_link()
        with pytest.raises(ValueError):
            link.ends[0].send("x", 0)

    def test_peer_property(self):
        _engine, link, _a, _b = make_link()
        assert link.ends[0].peer is link.ends[1]
        assert link.ends[1].peer is link.ends[0]

    def test_statistics_track_bytes(self):
        engine, link, _a, _b = make_link()
        link.ends[0].send("x", 300)
        link.ends[0].send("y", 200)
        engine.run()
        assert link.bytes_delivered[0] == 500
        assert link.frames_delivered[0] == 2


class TestFailure:
    def test_failed_link_drops_everything(self):
        engine, link, _a, inbox_b = make_link()
        link.fail()
        assert link.ends[0].send("x", 100) is False
        engine.run()
        assert inbox_b == []

    def test_repair_restores_delivery(self):
        engine, link, _a, inbox_b = make_link()
        link.fail()
        link.repair()
        link.ends[0].send("x", 100)
        engine.run()
        assert len(inbox_b) == 1

    def test_in_flight_frames_lost_on_failure(self):
        engine, link, _a, inbox_b = make_link(capacity_bps=1e6, delay=0.5)
        link.ends[0].send("x", 1250)
        engine.call_at(0.1, link.fail)
        engine.run()
        assert inbox_b == []

    def test_observers_notified_once_per_transition(self):
        _engine, link, _a, _b = make_link()
        seen = []
        link.observe(lambda lk, up: seen.append(up))
        link.fail()
        link.fail()   # no-op
        link.repair()
        link.repair()  # no-op
        assert seen == [False, True]

    def test_utilization_estimate(self):
        engine, link, _a, _b = make_link(capacity_bps=1e6, delay=0.0)
        link.ends[0].send("x", 12500)  # 0.1 s of the wire
        engine.run()
        assert link.utilization(1.0, 0) == pytest.approx(0.1)


class TestLossModels:
    def test_no_loss_never_drops(self):
        model = NoLoss()
        rng = random.Random(1)
        assert not any(model.should_drop(rng, 0.0) for _ in range(1000))

    def test_uniform_loss_rate_is_approximate(self):
        model = UniformLoss(0.3)
        rng = random.Random(1)
        drops = sum(model.should_drop(rng, 0.0) for _ in range(10000))
        assert 0.27 < drops / 10000 < 0.33

    def test_uniform_loss_validates_probability(self):
        with pytest.raises(ValueError):
            UniformLoss(1.5)

    def test_gilbert_elliott_is_bursty(self):
        model = GilbertElliott(p_good_to_bad=0.01, p_bad_to_good=0.1,
                               loss_good=0.0, loss_bad=1.0)
        rng = random.Random(7)
        outcomes = [model.should_drop(rng, 0.0) for _ in range(20000)]
        drops = sum(outcomes)
        assert drops > 0
        # burstiness: drops cluster — count runs of consecutive drops
        runs = sum(1 for a, b in zip(outcomes, outcomes[1:]) if a and b)
        assert runs > drops * 0.5  # far more clustered than independent loss

    def test_gilbert_elliott_validates_parameters(self):
        with pytest.raises(ValueError):
            GilbertElliott(p_good_to_bad=2.0)

    def test_signal_loss_ramp(self):
        model = SignalLoss(signal=1.0, good_threshold=0.8, dead_threshold=0.2)
        assert model.loss_probability() == 0.0
        model.signal = 0.5
        assert model.loss_probability() == pytest.approx(0.5)
        model.signal = 0.1
        assert model.loss_probability() == 1.0

    def test_signal_loss_threshold_validation(self):
        with pytest.raises(ValueError):
            SignalLoss(good_threshold=0.2, dead_threshold=0.5)

    def test_lossy_link_drops_frames(self):
        engine = Engine()
        link = Link(engine, "lossy", loss=UniformLoss(1.0),
                    rng=random.Random(3))
        inbox = []
        link.ends[1].attach(lambda p, s: inbox.append(p))
        link.ends[0].send("x", 100)
        engine.run()
        assert inbox == []
        assert link.frames_dropped_loss[0] == 1


class TestWirelessLink:
    def test_signal_attribute_drives_loss(self):
        engine = Engine()
        link = WirelessLink(engine, "radio", signal=1.0, rng=random.Random(5))
        inbox = []
        link.ends[1].attach(lambda p, s: inbox.append(p))
        link.ends[0].send("good", 100)
        engine.run()
        assert inbox == ["good"]
        link.signal = 0.0
        link.ends[0].send("dead", 100)
        engine.run()
        assert inbox == ["good"]

    def test_signal_clamped_to_unit_interval(self):
        link = WirelessLink(Engine(), "radio")
        link.signal = 5.0
        assert link.signal == 1.0
        link.signal = -1.0
        assert link.signal == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            Link(Engine(), "bad", capacity_bps=0)
        with pytest.raises(ValueError):
            Link(Engine(), "bad", delay=-1)
