"""Integration tests for the System API and fabric orchestration."""

import pytest

from repro.core import (Dif, DifPolicies, FabricError, FlowWaiter,
                        Orchestrator, add_shims, build_dif_over, make_systems,
                        run_until, shim_between, shim_name_for)
from repro.core.names import ApplicationName, DifName
from repro.core.system import SystemError_
from repro.sim.network import Network


def small_net(seed=1):
    network = Network(seed=seed)
    for name in ("a", "b", "c"):
        network.add_node(name)
    network.connect("a", "b")
    network.connect("b", "c")
    systems = make_systems(network)
    add_shims(systems, network)
    return network, systems


class TestSystem:
    def test_add_shim_per_interface(self):
        network, systems = small_net()
        assert len(systems["b"].provider_names()) == 2

    def test_duplicate_shim_rejected(self):
        network = Network()
        network.add_node("a")
        network.add_node("b")
        network.connect("a", "b")
        systems = make_systems(network)
        interface = next(network.node("a").interfaces())
        systems["a"].add_shim(interface, "s")
        with pytest.raises(SystemError_):
            systems["a"].add_shim(interface, "s")

    def test_duplicate_ipcp_rejected(self):
        network, systems = small_net()
        dif = Dif("d")
        systems["a"].create_ipcp(dif)
        with pytest.raises(SystemError_):
            systems["a"].create_ipcp(dif)

    def test_allocate_unknown_dif_raises(self):
        network, systems = small_net()
        with pytest.raises(SystemError_):
            systems["a"].allocate_flow(ApplicationName("x"),
                                       ApplicationName("y"),
                                       dif_name="missing")

    def test_allocate_without_common_dif_fails(self):
        network, systems = small_net()
        flow = systems["a"].allocate_flow(ApplicationName("x"),
                                          ApplicationName("unknown-app"))
        waiter = FlowWaiter(flow)
        run_until(network, waiter.done, timeout=5)
        assert not waiter.ok and waiter.reason == "no-common-dif"

    def test_idd_routes_allocation_to_right_dif(self):
        network, systems = small_net()
        dif = Dif("d")
        orchestrator = Orchestrator(network)
        build_dif_over(orchestrator, dif, systems, adjacencies=[
            ("a", "b", shim_between(network, "a", "b")),
            ("b", "c", shim_between(network, "b", "c"))])
        orchestrator.run(timeout=30)
        systems["c"].register_app(ApplicationName("svc"), lambda f: None)
        network.run(until=network.engine.now + 0.5)
        # no dif_name given: the IDD must find "d"
        flow = systems["a"].allocate_flow(ApplicationName("cli"),
                                          ApplicationName("svc"))
        waiter = FlowWaiter(flow)
        run_until(network, waiter.done, timeout=15)
        assert waiter.ok
        assert flow.provider_name == DifName("d")

    def test_unregister_app_withdraws_from_idd(self):
        network, systems = small_net()
        dif = Dif("d")
        orchestrator = Orchestrator(network)
        build_dif_over(orchestrator, dif, systems, adjacencies=[
            ("a", "b", shim_between(network, "a", "b"))])
        orchestrator.run(timeout=30)
        app = ApplicationName("svc")
        systems["b"].register_app(app, lambda f: None)
        assert systems["b"].idd.candidates(app)
        systems["b"].unregister_app(app)
        assert not systems["b"].idd.candidates(app)


class TestOrchestrator:
    def test_steps_run_in_order(self):
        network, _systems = small_net()
        orchestrator = Orchestrator(network)
        seen = []
        orchestrator.call("one", lambda: seen.append(1))
        orchestrator.settle(0.5)
        orchestrator.call("two", lambda: seen.append((2, network.engine.now)))
        orchestrator.run(timeout=10)
        assert seen[0] == 1
        assert seen[1][0] == 2 and seen[1][1] >= 0.5

    def test_failed_step_raises_in_strict_mode(self):
        network, systems = small_net()
        orchestrator = Orchestrator(network)
        dif = Dif("d")
        orchestrator.call("make", lambda: systems["a"].create_ipcp(dif))
        # enrolling via a member that does not exist fails
        orchestrator.enroll(systems["a"], "d",
                            ApplicationName("ghost.ipcp.b"),
                            shim_between(network, "a", "b"))
        with pytest.raises(FabricError):
            orchestrator.run(timeout=30)

    def test_failures_collected_in_lenient_mode(self):
        network, systems = small_net()
        orchestrator = Orchestrator(network)
        dif = Dif("d")
        orchestrator.call("make", lambda: systems["a"].create_ipcp(dif))
        orchestrator.enroll(systems["a"], "d",
                            ApplicationName("ghost.ipcp.b"),
                            shim_between(network, "a", "b"))
        ok = orchestrator.run(timeout=30, strict=False)
        assert not ok
        assert orchestrator.failures


class TestBuildDifOver:
    def test_bfs_enrolls_every_member(self):
        network, systems = small_net()
        dif = Dif("d")
        orchestrator = Orchestrator(network)
        build_dif_over(orchestrator, dif, systems, adjacencies=[
            ("a", "b", shim_between(network, "a", "b")),
            ("b", "c", shim_between(network, "b", "c"))])
        orchestrator.run(timeout=30)
        assert dif.member_count() == 3

    def test_bootstrap_override(self):
        network, systems = small_net()
        dif = Dif("d")
        orchestrator = Orchestrator(network)
        build_dif_over(orchestrator, dif, systems, adjacencies=[
            ("a", "b", shim_between(network, "a", "b"))],
            bootstrap="b")
        orchestrator.run(timeout=30)
        # bootstrap member got the first address
        b_ipcp = systems["b"].ipcp("d")
        assert b_ipcp.address.parts == (1,)

    def test_bad_bootstrap_rejected(self):
        network, systems = small_net()
        orchestrator = Orchestrator(network)
        with pytest.raises(FabricError):
            build_dif_over(orchestrator, Dif("d"), systems,
                           adjacencies=[("a", "b",
                                         shim_between(network, "a", "b"))],
                           bootstrap="zzz")

    def test_empty_adjacencies_rejected(self):
        network, systems = small_net()
        with pytest.raises(FabricError):
            build_dif_over(Orchestrator(network), Dif("d"), systems, [])

    def test_region_hints_flow_into_addresses(self):
        network, systems = small_net()
        from repro.core import TopologicalAddressing
        dif = Dif("d", DifPolicies(addressing=TopologicalAddressing()))
        orchestrator = Orchestrator(network)
        build_dif_over(orchestrator, dif, systems, adjacencies=[
            ("a", "b", shim_between(network, "a", "b")),
            ("b", "c", shim_between(network, "b", "c"))],
            region_hints={"a": [1], "b": [1], "c": [2]})
        orchestrator.run(timeout=30)
        assert systems["c"].ipcp("d").address.parts[0] == 2

    def test_run_until_times_out_cleanly(self):
        network, _systems = small_net()
        assert not run_until(network, lambda: False, timeout=0.5)
        assert run_until(network, lambda: True, timeout=0.5)
