"""System-wide property tests: routing correctness against ground truth,
directory convergence, and random-network soak tests."""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (Dif, DifPolicies, FlowWaiter, MessageFlow,
                        Orchestrator, add_shims, build_dif_over, make_systems,
                        run_until)
from repro.core.names import Address, ApplicationName
from repro.core.qos import RELIABLE
from repro.sim.network import Network


def random_connected_edges(n, extra, rng_seed):
    """A connected random graph as an edge list over range(n)."""
    import random
    rng = random.Random(rng_seed)
    edges = set()
    for i in range(1, n):
        edges.add((rng.randrange(i), i))
    attempts = 0
    while len(edges) < n - 1 + extra and attempts < 10 * n:
        attempts += 1
        a, b = rng.randrange(n), rng.randrange(n)
        if a != b:
            edges.add((min(a, b), max(a, b)))
    return sorted(edges)


def build_dif_network(edges, n, seed=1, policies=None):
    network = Network(seed=seed)
    names = [f"s{i}" for i in range(n)]
    for name in names:
        network.add_node(name)
    link_names = {}
    for index, (a, b) in enumerate(edges):
        link = network.connect(names[a], names[b], name=f"e{index}")
        link_names[(a, b)] = f"shim:e{index}"
    systems = make_systems(network)
    add_shims(systems, network)
    dif = Dif("d", policies or DifPolicies(keepalive_interval=2.0,
                                           refresh_interval=None))
    orchestrator = Orchestrator(network)
    build_dif_over(orchestrator, dif, systems, adjacencies=[
        (names[a], names[b], link_names[(a, b)]) for a, b in edges],
        settle=1.0)
    orchestrator.run(timeout=600)
    network.run(until=network.engine.now + 2.0)
    return network, systems, dif, names


class TestRoutingMatchesGroundTruth:
    @settings(max_examples=6, deadline=None)
    @given(st.integers(min_value=3, max_value=9),
           st.integers(min_value=0, max_value=4),
           st.integers(min_value=0, max_value=1000))
    def test_property_hop_distances_equal_networkx(self, n, extra, seed):
        edges = random_connected_edges(n, extra, seed)
        network, systems, dif, names = build_dif_network(edges, n, seed=1)
        graph = nx.Graph(edges)
        address_of = {index: systems[names[index]].ipcp("d").address
                      for index in range(n)}
        index_of = {address: index for index, address in address_of.items()}
        for source in range(n):
            ipcp = systems[names[source]].ipcp("d")
            table = ipcp.routing.table()
            # every other member reachable
            assert set(table) == {address_of[i] for i in range(n)
                                  if i != source}
            # next hops realize shortest-path distances
            lengths = nx.single_source_shortest_path_length(graph, source)
            for destination, next_hop in table.items():
                d_index = index_of[destination]
                h_index = index_of[next_hop]
                assert graph.has_edge(source, h_index) or source == h_index
                assert lengths[h_index] + 1 <= lengths[d_index] + 1
                # moving to the next hop strictly approaches the destination
                d_from_hop = nx.shortest_path_length(graph, h_index, d_index)
                assert d_from_hop == lengths[d_index] - 1


class TestRandomNetworkSoak:
    @settings(max_examples=4, deadline=None)
    @given(st.integers(min_value=3, max_value=7),
           st.integers(min_value=0, max_value=3),
           st.integers(min_value=0, max_value=500))
    def test_property_any_pair_can_talk(self, n, extra, seed):
        edges = random_connected_edges(n, extra, seed)
        network, systems, dif, names = build_dif_network(edges, n, seed=2)
        import random
        rng = random.Random(seed)
        server_index = rng.randrange(n)
        client_index = (server_index + 1 + rng.randrange(n - 1)) % n
        received = []

        def on_flow(flow):
            mf = MessageFlow(network.engine, flow)
            mf.set_message_receiver(received.append)
            on_flow.keep = mf
        systems[names[server_index]].register_app(ApplicationName("svc"),
                                                  on_flow)
        network.run(until=network.engine.now + 1.0)
        flow = systems[names[client_index]].allocate_flow(
            ApplicationName("cli"), ApplicationName("svc"), qos=RELIABLE)
        waiter = FlowWaiter(flow)
        assert run_until(network, waiter.done, timeout=30)
        assert waiter.ok, waiter.reason
        sender = MessageFlow(network.engine, flow)
        sender.send_message(b"soak")
        assert run_until(network, lambda: received, timeout=30)
        assert received == [b"soak"]


class TestDirectoryConvergence:
    def test_registrations_visible_everywhere_in_a_ring(self):
        edges = [(0, 1), (1, 2), (2, 3), (3, 0)]
        network, systems, dif, names = build_dif_network(edges, 4)
        for index, name in enumerate(names):
            systems[name].register_app(ApplicationName(f"app-{index}"),
                                       lambda f: None)
        network.run(until=network.engine.now + 3.0)
        expected = {ApplicationName(f"app-{i}") for i in range(4)}
        for name in names:
            known = systems[name].ipcp("d").directory.known_names()
            assert expected <= known

    def test_unregistration_propagates(self):
        edges = [(0, 1), (1, 2)]
        network, systems, dif, names = build_dif_network(edges, 3)
        app = ApplicationName("ephemeral")
        systems[names[2]].register_app(app, lambda f: None)
        network.run(until=network.engine.now + 2.0)
        far = systems[names[0]].ipcp("d").directory
        assert far.lookup(app) is not None
        systems[names[2]].unregister_app(app)
        network.run(until=network.engine.now + 2.0)
        assert far.lookup(app) is None
