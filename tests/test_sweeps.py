"""Serial-equivalence suite for the multi-process sweep runner.

The contract under test: dispatching a job list over a worker pool is
**invisible in the output** — rows come back in job order with the same
values as the in-process serial path, for every experiment key and for
scenario batches, and every row survives a ``pickle`` and ``json``
round trip (what the pool and the results files respectively do to it).
"""

import json
import math
import os
import pickle

import pytest

from repro.__main__ import EXPERIMENTS
from repro.scenarios import determinism_jobs, generate_specs
from repro.sweeps import (Job, JobError, SweepRunner, parse_worker_count,
                          stable_rows, worker_info_row)

PARALLEL_WORKERS = 4


def _rows_equal(a, b):
    """Deep equality that treats NaN as equal to NaN (rows are metric
    dicts; ``nan != nan`` would make a bitwise-identical row "differ")."""
    if isinstance(a, float) and isinstance(b, float):
        return (math.isnan(a) and math.isnan(b)) or a == b
    if isinstance(a, dict) and isinstance(b, dict):
        return (list(a.keys()) == list(b.keys())
                and all(_rows_equal(a[k], b[k]) for k in a))
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        return (len(a) == len(b)
                and all(_rows_equal(x, y) for x, y in zip(a, b)))
    return a == b


def _jobs_for(key):
    """The experiment's job list; e6-scale pinned to the small tier so
    the suite stays fast (coverage is about the key, not the size)."""
    if key == "e6-scale":
        from repro.experiments.e6_scalability import iter_scale_jobs
        return iter_scale_jobs(["small"])
    _title, jobs_fn = EXPERIMENTS[key]
    return list(jobs_fn())


# ----------------------------------------------------------------------
# The tentpole contract: --jobs 1 == --jobs 4, for every experiment key
# ----------------------------------------------------------------------
@pytest.mark.parametrize("key", sorted(EXPERIMENTS))
def test_parallel_rows_identical_to_serial(key):
    jobs = _jobs_for(key)
    assert jobs, f"{key}: empty job list"
    serial = SweepRunner(workers=1).run(jobs)
    parallel = SweepRunner(workers=PARALLEL_WORKERS).run(jobs)
    assert len(serial) == len(parallel)
    # wall-clock keys (E6 scale rows) are measurements, not results:
    # they differ run to run even serially and are excluded by contract
    for row_s, row_p in zip(stable_rows(serial), stable_rows(parallel)):
        assert _rows_equal(row_s, row_p), (
            f"{key}: parallel row diverged from serial\n"
            f"  serial:   {row_s}\n  parallel: {row_p}")
    # same order, not just same multiset: row streams match pairwise
    for row in serial:
        assert _rows_equal(pickle.loads(pickle.dumps(row)), row)
        assert _rows_equal(json.loads(json.dumps(row)), row)


def test_scenario_batch_parallel_rows_identical_to_serial():
    specs = generate_specs(3, 3)     # the gen:3 batch of the CLI
    for spec in specs:
        spec.duration = min(spec.duration, 3.0)   # wall-clock hygiene
    jobs = determinism_jobs(specs, seed=3)
    serial = SweepRunner(workers=1).run(jobs)
    parallel = SweepRunner(workers=PARALLEL_WORKERS).run(jobs)
    assert serial == parallel        # scenario rows have no volatile keys
    assert all(row["deterministic"] for row in serial)
    # the trace fingerprint also crossed the process boundary unchanged
    assert ([row["trace_sha256"] for row in serial]
            == [row["trace_sha256"] for row in parallel])
    for row in serial:
        assert _rows_equal(pickle.loads(pickle.dumps(row)), row)
        assert _rows_equal(json.loads(json.dumps(row)), row)


# ----------------------------------------------------------------------
# Job lists are data
# ----------------------------------------------------------------------
@pytest.mark.parametrize("key", sorted(EXPERIMENTS))
def test_jobs_are_picklable_pure_data(key):
    for job in _jobs_for(key):
        assert pickle.loads(pickle.dumps(job)) == job
        json.dumps(job.kwargs)       # kwargs are JSON-safe scalars
        assert job.group and job.label
        job.resolve()                # target names a real callable


def test_a5_jobs_execute_through_the_pool():
    # a5 has no CLI registry key; cover its job form here (scaled down)
    from repro.experiments.a5_depth import iter_jobs
    jobs = iter_jobs(depths=[1], total_bytes=30_000)
    serial = SweepRunner(workers=1).run(jobs)
    parallel = SweepRunner(workers=2).run(jobs + jobs)
    assert parallel == serial + serial


# ----------------------------------------------------------------------
# Runner mechanics
# ----------------------------------------------------------------------
def test_merge_is_job_order_not_completion_order():
    # the first job finishes last; its rows must still come back first
    jobs = [Job("repro.sweeps.job:echo_row",
                kwargs={"index": 0, "delay_s": 0.3})]
    jobs += [Job("repro.sweeps.job:echo_row", kwargs={"index": i})
             for i in range(1, 6)]
    rows = SweepRunner(workers=PARALLEL_WORKERS).run(jobs)
    assert [row["index"] for row in rows] == list(range(6))


def test_imap_streams_per_job_results_in_job_order():
    # the CLI prints each experiment's table from this stream: the slow
    # first job must come out first, then the rest, incrementally
    jobs = [Job("repro.sweeps.job:echo_row",
                kwargs={"index": 0, "delay_s": 0.2})]
    jobs += [Job("repro.sweeps.job:echo_row", kwargs={"index": i})
             for i in range(1, 4)]
    stream = SweepRunner(workers=2).imap(jobs)
    assert next(stream)[0]["index"] == 0
    assert [rows[0]["index"] for rows in stream] == [1, 2, 3]


def test_pool_really_uses_other_processes():
    jobs = [Job("repro.sweeps.job:worker_info_row", kwargs={"index": i})
            for i in range(4)]
    rows = SweepRunner(workers=2).run(jobs)
    assert all(row["pid"] != os.getpid() for row in rows)
    # and the serial path really stays in-process
    rows = SweepRunner(workers=1).run(jobs)
    assert all(row["pid"] == os.getpid() for row in rows)


def test_spawn_start_method_round_trips_jobs():
    # spawn re-imports everything in the child: catches pickling and
    # import-order bugs the default fork start method masks
    jobs = [Job("repro.sweeps.job:echo_row", kwargs={"index": i})
            for i in range(3)]
    rows = SweepRunner(workers=2, start_method="spawn").run(jobs)
    assert [row["index"] for row in rows] == [0, 1, 2]


def test_run_grouped_preserves_group_and_job_order():
    jobs = [Job("repro.sweeps.job:echo_row", kwargs={"index": i},
                group="g1" if i % 2 == 0 else "g2")
            for i in range(6)]
    grouped = SweepRunner(workers=1).run_grouped(jobs)
    assert list(grouped) == ["g1", "g2"]
    assert [row["index"] for row in grouped["g1"]] == [0, 2, 4]
    assert [row["index"] for row in grouped["g2"]] == [1, 3, 5]


def test_single_job_row_dict_is_wrapped_in_a_list():
    job = Job("repro.sweeps.job:echo_row", kwargs={"value": 7})
    assert job.run() == [{"value": 7, "delay_s": 0.0}]


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------
@pytest.mark.parametrize("value", [0, -1, "0", "-3", "two", None, 1.5, ""])
def test_parse_worker_count_rejects_non_positive_and_non_integers(value):
    with pytest.raises(ValueError):
        parse_worker_count(value)


@pytest.mark.parametrize("value,expected", [(1, 1), ("1", 1), ("8", 8), (3, 3)])
def test_parse_worker_count_accepts_positive_integers(value, expected):
    assert parse_worker_count(value) == expected


@pytest.mark.parametrize("target", [
    "no-colon", ":func", "mod:", "repro.sweeps.job:not_there",
    "definitely.not.a.module:fn",
])
def test_malformed_job_targets_raise_joberror(target):
    with pytest.raises(JobError):
        Job(target).run()


def test_unknown_start_method_rejected_at_construction():
    # not at dispatch time, when serial output may already exist
    with pytest.raises(ValueError, match="start method"):
        SweepRunner(workers=2, start_method="Spawn")


def test_non_row_results_raise_joberror():
    # a real callable whose return value is not a row dict / row list
    job = Job("repro.experiments.common:percentile",
              kwargs={"values": [1.0, 2.0], "pct": 50})
    with pytest.raises(JobError):
        job.run()
