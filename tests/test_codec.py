"""The wire-format codec contract (see src/repro/core/codec.py).

Three properties over every PDU kind, every RIEP opcode, LSAs, names,
and a zoo of JSON-like payload values:

* **round trip** — decode(encode(x)) is equal-valued to x;
* **byte stability** — encode(decode(encode(x))) == encode(x), in this
  process and in a spawn-ed worker with no inherited interning;
* **size consistency** — the live ``wire_size()``, the size computed
  from the encoded form without decoding, and the decoded copy's
  recomputed size all agree (the regression the independently computed
  ``RiepMessage._size_cache`` used to have no check against).
"""

import pickle

import pytest

from repro.core import codec
from repro.core.names import Address, ApplicationName, DifName
from repro.core.pdu import (ACK, CREDIT, KEEPALIVE, NACK, ControlPdu,
                            DataPdu, ManagementPdu, Pdu)
from repro.core.riep import (M_CONNECT, M_CREATE, M_READ_R, M_START,
                             M_WRITE, RESULT_DENIED, RiepMessage)
from repro.core.routing import Lsa

A = Address(2, 0, 13)
B = Address(7)


def riep_value_zoo():
    """Payload values covering every branch of the size estimator."""
    return [
        None,
        True,
        False,
        0,
        -17,
        2.5,
        "a string",
        b"\x00\x01\xff",
        [1, "two", 3.0],
        (4, (5, 6)),
        {"origin": (1, 2), "seq": 9,
         "neighbors": [((7,), 1.0), ((2, 0, 13), 2.0)]},
        {"nested": {"deep": [None, {"x": b"y"}]}},
        {1, "s", 2.5},
        frozenset({("t", 1)}),
        [],
        {},
    ]


def pdu_zoo():
    """At least one PDU of every kind, edge fields exercised."""
    pdus = [
        DataPdu(A, B, 5, 6, 7, "payload", 100),
        DataPdu(B, A, 1, 2, 0, ("tuple", ["list", b"bytes"]), 0,
                drf=True, ttl=3, priority=2),
        ControlPdu(A, B, ACK, 5, 6, ack_seq=9, credit=4),
        ControlPdu(B, A, NACK, 1, 2, sack=(11, 13, 17)),
        ControlPdu(A, B, CREDIT, 0, 0, credit=32),
        ControlPdu(A, B, KEEPALIVE, 0, 0),
        ManagementPdu(None, None,
                      RiepMessage(M_CONNECT, obj="/enrollment",
                                  value={"name": "x.ipcp.h0", "dif": "flat",
                                         "region": (2, 1), "address": None})),
        ManagementPdu(A, None,
                      RiepMessage(M_READ_R, obj="/enrollment",
                                  invoke_id=4, result=RESULT_DENIED)),
        ManagementPdu(A, B,
                      RiepMessage(M_CREATE, obj="/flowalloc",
                                  value={"src_app": "echo", "dst_app": "srv",
                                         "qos": "best-effort", "src_cep": 3,
                                         "src_addr": (2, 0, 13)})),
        ManagementPdu(A, None, {"not": "a riep message"}),
    ]
    for value in riep_value_zoo():
        pdus.append(ManagementPdu(
            A, None, RiepMessage(M_WRITE, obj="/routing/lsa", value=value)))
    return pdus


def equal_pdu(a, b):
    """Field-by-field PDU equality (PDUs define no __eq__)."""
    if type(a) is not type(b):
        return False
    common = (a.src_addr == b.src_addr and a.dst_addr == b.dst_addr
              and a.ttl == b.ttl and a.priority == b.priority)
    if isinstance(a, DataPdu):
        return common and (a.src_cep, a.dst_cep, a.seq, a.payload,
                           a.payload_size, a.drf) == \
            (b.src_cep, b.dst_cep, b.seq, b.payload, b.payload_size, b.drf)
    if isinstance(a, ControlPdu):
        return common and (a.kind, a.src_cep, a.dst_cep, a.ack_seq,
                           a.credit, a.sack) == \
            (b.kind, b.src_cep, b.dst_cep, b.ack_seq, b.credit, b.sack)
    message_a, message_b = a.message, b.message
    if isinstance(message_a, RiepMessage) != isinstance(message_b,
                                                        RiepMessage):
        return False
    if isinstance(message_a, RiepMessage):
        return common and (message_a.opcode, message_a.obj, message_a.value,
                           message_a.invoke_id, message_a.result) == \
            (message_b.opcode, message_b.obj, message_b.value,
             message_b.invoke_id, message_b.result)
    return common and message_a == message_b


# ----------------------------------------------------------------------
# Round trip + byte stability
# ----------------------------------------------------------------------
class TestRoundTrip:
    @pytest.mark.parametrize("index", range(len(pdu_zoo())))
    def test_every_pdu_kind_round_trips(self, index):
        pdu = pdu_zoo()[index]
        encoded = pdu.encode()
        assert codec.is_wire_data(encoded), encoded
        copy = Pdu.decode(encoded)
        assert equal_pdu(pdu, copy), (pdu, copy)
        # byte stability: the encoded form is canonical
        assert codec.encode(copy) == encoded

    @pytest.mark.parametrize("index", range(len(riep_value_zoo())))
    def test_every_value_shape_round_trips(self, index):
        value = riep_value_zoo()[index]
        encoded = codec.encode(value)
        assert codec.is_wire_data(encoded)
        assert codec.decode(encoded) == value
        assert codec.decode_reencode(encoded) == encoded

    def test_riep_message_round_trip(self):
        message = RiepMessage(M_START, obj="/enrollment/auth",
                              value={"credentials": "tok"}, invoke_id=7)
        copy = RiepMessage.decode(message.encode())
        assert (copy.opcode, copy.obj, copy.value, copy.invoke_id,
                copy.result) == (message.opcode, message.obj, message.value,
                                 message.invoke_id, message.result)
        assert copy.encode() == message.encode()

    def test_lsa_round_trip_reinterns_addresses(self):
        lsa = Lsa(A, 4, {B: 1.0, Address(9): 2.5})
        copy = Lsa.decode(lsa.encode())
        assert copy.origin is A          # interning: identity, not just ==
        assert copy.seq == 4 and copy.neighbors == lsa.neighbors
        assert copy.to_value() == lsa.to_value()
        assert copy.encode() == lsa.encode()

    def test_names_round_trip(self):
        for name in (A, B, Address(0), ApplicationName("proc", "2"),
                     ApplicationName("p"), DifName("metro")):
            assert codec.decode(codec.encode(name)) == name

    def test_decoded_addresses_are_interned(self):
        copy = codec.decode(codec.encode(Address(41, 5)))
        assert copy is Address(41, 5)

    def test_shim_frame_round_trips(self):
        # what actually crosses a physical link in the stateful build:
        # a shim frame wrapping a PDU
        inner = ManagementPdu(None, None,
                              RiepMessage(M_CONNECT, obj="/enrollment",
                                          value={"dif": "flat"}))
        frame = ("data", 4, inner, inner.wire_size())
        encoded = codec.encode(frame)
        assert codec.is_wire_data(encoded)
        kind, flow_id, pdu, size = codec.decode(encoded)
        assert (kind, flow_id, size) == ("data", 4, inner.wire_size())
        assert equal_pdu(pdu, inner)
        assert codec.encode((kind, flow_id, pdu, size)) == encoded

    def test_encoded_forms_pickle_unchanged(self):
        for pdu in pdu_zoo():
            encoded = pdu.encode()
            assert pickle.loads(pickle.dumps(encoded)) == encoded

    def test_live_objects_are_rejected(self):
        class Alien:
            pass
        with pytest.raises(codec.CodecError, match="cannot encode"):
            codec.encode(Alien())
        with pytest.raises(codec.CodecError, match="cannot encode"):
            codec.encode(DataPdu(A, B, 1, 2, 3, Alien(), 10))
        with pytest.raises(codec.CodecError, match="unknown wire tag"):
            codec.decode(("??", 1))

    def test_pdu_decode_rejects_non_pdu_data(self):
        with pytest.raises(TypeError, match="not a PDU"):
            Pdu.decode(codec.encode("just a string... no, a tuple"))
        with pytest.raises(TypeError, match="not a RiepMessage"):
            RiepMessage.decode(codec.encode((1, 2)))
        with pytest.raises(TypeError, match="not an Lsa"):
            Lsa.decode(codec.encode([1]))


# ----------------------------------------------------------------------
# Size consistency (the wire_size / _size_cache regression)
# ----------------------------------------------------------------------
class TestSizeConsistency:
    @pytest.mark.parametrize("index", range(len(pdu_zoo())))
    def test_three_accountings_agree(self, index):
        pdu = pdu_zoo()[index]
        codec.check_size_consistency(pdu)
        assert codec.encoded_wire_size(pdu.encode()) == pdu.wire_size()

    def test_decoded_riep_size_cache_matches_carried_and_recomputed(self):
        message = RiepMessage(M_WRITE, obj="/routing/lsa",
                              value={"origin": (1,), "seq": 2,
                                     "neighbors": [((3,), 1.0)]})
        carried = message.estimate_size()
        copy = RiepMessage.decode(message.encode())
        assert copy._size_cache == carried       # carried across the cut
        copy._size_cache = None
        assert copy.estimate_size() == carried   # and independently equal

    def test_size_errors_are_loud(self):
        with pytest.raises(codec.CodecError, match="not an encoded PDU"):
            codec.encoded_wire_size("scalar")
        with pytest.raises(codec.CodecError, match="not an encoded PDU tag"):
            codec.encoded_wire_size(codec.encode((1, 2)))
        with pytest.raises(codec.CodecError, match="not an encoded RIEP"):
            codec.encoded_riep_size(codec.encode({"a": 1}))


# ----------------------------------------------------------------------
# Across a spawn-ed process boundary
# ----------------------------------------------------------------------
def test_round_trip_is_stable_in_spawned_workers():
    """Encoded samples decoded and re-encoded inside spawn-ed pool
    workers canonicalize to the same bytes: nothing in the round trip
    depends on parent-process state (interning tables, caches)."""
    from repro.sweeps import Job, SweepRunner
    samples = tuple(pdu.encode() for pdu in pdu_zoo())
    jobs = [Job("repro.core.codec:roundtrip_rows",
                kwargs={"samples": samples}, group="codec",
                label="spawned round trip")] * 2
    rows = SweepRunner(workers=2, start_method="spawn").run(jobs)
    assert len(rows) == 2 * len(samples)
    assert all(row["stable"] for row in rows)
    sizes = [pdu.wire_size() for pdu in pdu_zoo()]
    for row in rows:
        assert row["size"] == sizes[row["index"]]
