"""Unit tests for the shim DIF over a point-to-point link."""

import pytest

from repro.core.names import ApplicationName, DifName
from repro.core.shim import ShimIpcp
from repro.sim.engine import Engine
from repro.sim.link import Link


def make_shim_pair(capacity_bps=1e8):
    engine = Engine()
    link = Link(engine, "wire", capacity_bps=capacity_bps, delay=0.001)
    left = ShimIpcp(engine, DifName("shim:wire"), "left", link.ends[0])
    right = ShimIpcp(engine, DifName("shim:wire"), "right", link.ends[1])
    return engine, link, left, right


class TestAllocation:
    def test_flow_to_registered_app(self):
        engine, _link, left, right = make_shim_pair()
        inbound = []
        right.register_app(ApplicationName("svc"), inbound.append)
        flow = left.allocate_flow(ApplicationName("cli"),
                                  ApplicationName("svc"))
        engine.run(until=1.0)
        assert flow.allocated
        assert len(inbound) == 1
        assert inbound[0].allocated
        assert inbound[0].remote_app == ApplicationName("cli")

    def test_flow_to_unknown_app_fails(self):
        engine, _link, left, right = make_shim_pair()
        flow = left.allocate_flow(ApplicationName("cli"),
                                  ApplicationName("ghost"))
        failures = []
        flow.on_failed = lambda f, reason: failures.append(reason)
        engine.run(until=1.0)
        assert flow.state == "failed"
        assert failures == ["no-such-app"]

    def test_unregister_stops_new_flows(self):
        engine, _link, left, right = make_shim_pair()
        right.register_app(ApplicationName("svc"), lambda f: None)
        right.unregister_app(ApplicationName("svc"))
        flow = left.allocate_flow(ApplicationName("cli"),
                                  ApplicationName("svc"))
        engine.run(until=1.0)
        assert flow.state == "failed"

    def test_registered_apps_listed(self):
        _engine, _link, left, _right = make_shim_pair()
        left.register_app(ApplicationName("a"), lambda f: None)
        left.register_app(ApplicationName("b"), lambda f: None)
        assert left.registered_apps() == (ApplicationName("a"),
                                          ApplicationName("b"))

    def test_simultaneous_allocations_use_distinct_ids(self):
        engine, _link, left, right = make_shim_pair()
        inbound = []
        left.register_app(ApplicationName("lsvc"), inbound.append)
        right.register_app(ApplicationName("rsvc"), inbound.append)
        flow_lr = left.allocate_flow(ApplicationName("a"),
                                     ApplicationName("rsvc"))
        flow_rl = right.allocate_flow(ApplicationName("b"),
                                      ApplicationName("lsvc"))
        engine.run(until=1.0)
        assert flow_lr.allocated and flow_rl.allocated
        assert len(inbound) == 2


class TestDataTransfer:
    def _allocated_pair(self):
        engine, link, left, right = make_shim_pair()
        inbound = []
        right.register_app(ApplicationName("svc"), inbound.append)
        flow = left.allocate_flow(ApplicationName("cli"),
                                  ApplicationName("svc"))
        engine.run(until=1.0)
        return engine, link, flow, inbound[0]

    def test_bidirectional_data(self):
        engine, _link, out_flow, in_flow = self._allocated_pair()
        got_right, got_left = [], []
        in_flow.set_receiver(lambda p, s: got_right.append(p))
        out_flow.set_receiver(lambda p, s: got_left.append(p))
        out_flow.send("ping", 10)
        engine.run(until=2.0)
        in_flow.send("pong", 10)
        engine.run(until=3.0)
        assert got_right == ["ping"]
        assert got_left == ["pong"]

    def test_nominal_bps_exposes_link_capacity(self):
        engine, link, out_flow, in_flow = self._allocated_pair()
        assert out_flow.nominal_bps == link.capacity_bps
        assert in_flow.nominal_bps == link.capacity_bps

    def test_deallocate_releases_far_end(self):
        engine, _link, out_flow, in_flow = self._allocated_pair()
        released = []
        in_flow.on_deallocated = lambda f: released.append(1)
        out_flow.deallocate()
        engine.run(until=2.0)
        assert released
        assert in_flow.state == "deallocated"

    def test_send_after_peer_deallocation_is_dropped(self):
        engine, _link, out_flow, in_flow = self._allocated_pair()
        in_flow.deallocate()
        engine.run(until=2.0)
        # the local flow learned of the release
        assert out_flow.state == "deallocated"

    def test_frames_carry_shim_overhead(self):
        engine, link, out_flow, _in_flow = self._allocated_pair()
        delivered_before = link.bytes_delivered[0]
        out_flow.send("x", 100)
        engine.run(until=2.0)
        from repro.core.shim import SHIM_HEADER_BYTES
        assert link.bytes_delivered[0] - delivered_before == 100 + SHIM_HEADER_BYTES
