"""Unit tests for EFCP: sequencing, retransmission, flow control, policies.

Two connections are wired through a controllable in-memory "wire" that can
drop selected PDUs, so every recovery path is exercised deterministically.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.efcp import (CONGESTION_AIMD, RETX_GOBACKN, RETX_NONE,
                             RETX_SELECTIVE, EfcpConnection, EfcpPolicy)
from repro.core.names import Address
from repro.core.pdu import ControlPdu, DataPdu
from repro.core.qos import BEST_EFFORT, RELIABLE, QosCube
from repro.sim.engine import Engine


class Wire:
    """Bidirectional lossy pipe between two EFCP endpoints."""

    def __init__(self, engine, delay=0.005):
        self.engine = engine
        self.delay = delay
        self.a = None
        self.b = None
        self.drop_filter = None   # (side, pdu) -> bool
        self.sent = []

    def output_from(self, side):
        def output(pdu):
            self.sent.append((side, pdu))
            if self.drop_filter is not None and self.drop_filter(side, pdu):
                return
            peer = self.b if side == "a" else self.a
            self.engine.call_later(self.delay, self._deliver, peer, pdu)
        return output

    @staticmethod
    def _deliver(conn, pdu):
        if conn.closed:
            return
        if isinstance(pdu, DataPdu):
            conn.handle_data(pdu)
        else:
            conn.handle_control(pdu)

    def data_sent(self, side):
        return [p for s, p in self.sent if s == side and isinstance(p, DataPdu)]


def make_pair(policy=None, peer_policy=None, delay=0.005):
    engine = Engine()
    wire = Wire(engine, delay=delay)
    policy = policy or EfcpPolicy()
    peer_policy = peer_policy or policy
    delivered_a, delivered_b = [], []
    conn_a = EfcpConnection(engine, Address(1), Address(2), 10, 20, policy,
                            output=wire.output_from("a"),
                            deliver=lambda p, s: delivered_a.append((p, s)))
    conn_b = EfcpConnection(engine, Address(2), Address(1), 20, 10, peer_policy,
                            output=wire.output_from("b"),
                            deliver=lambda p, s: delivered_b.append((p, s)))
    wire.a, wire.b = conn_a, conn_b
    return engine, wire, conn_a, conn_b, delivered_a, delivered_b


class TestReliableDelivery:
    def test_in_order_delivery_without_loss(self):
        engine, _w, a, _b, _da, db = make_pair()
        for index in range(20):
            assert a.send(f"m{index}", 100)
        engine.run(until=5.0)
        assert [payload for payload, _s in db] == [f"m{i}" for i in range(20)]
        assert a.all_acknowledged()

    def test_single_loss_recovered_by_retransmission(self):
        engine, wire, a, _b, _da, db = make_pair()
        dropped = []

        def drop_seq_3_once(side, pdu):
            if (side == "a" and isinstance(pdu, DataPdu) and pdu.seq == 3
                    and not dropped):
                dropped.append(pdu)
                return True
            return False
        wire.drop_filter = drop_seq_3_once
        for index in range(10):
            a.send(index, 100)
        engine.run(until=10.0)
        assert [payload for payload, _s in db] == list(range(10))
        assert a.stats.retransmissions >= 1

    def test_burst_loss_recovered(self):
        engine, wire, a, _b, _da, db = make_pair()
        to_drop = {2, 3, 4, 5}

        def drop_once(side, pdu):
            if side == "a" and isinstance(pdu, DataPdu) and pdu.seq in to_drop:
                to_drop.discard(pdu.seq)
                return True
            return False
        wire.drop_filter = drop_once
        for index in range(12):
            a.send(index, 100)
        engine.run(until=10.0)
        assert [payload for payload, _s in db] == list(range(12))

    def test_lost_ack_recovered(self):
        engine, wire, a, _b, _da, db = make_pair()
        dropped = []

        def drop_first_ack(side, pdu):
            if side == "b" and isinstance(pdu, ControlPdu) and not dropped:
                dropped.append(pdu)
                return True
            return False
        wire.drop_filter = drop_first_ack
        a.send("only", 100)
        engine.run(until=10.0)
        assert db and a.all_acknowledged()

    def test_duplicate_data_not_delivered_twice(self):
        engine, wire, a, b, _da, db = make_pair()
        a.send("x", 100)
        engine.run(until=1.0)
        # replay the same PDU at the receiver
        pdu = wire.data_sent("a")[0]
        b.handle_data(pdu)
        engine.run(until=2.0)
        assert len(db) == 1
        assert b.stats.duplicates >= 1

    def test_out_of_order_buffered_then_delivered_in_order(self):
        engine, wire, a, _b, _da, db = make_pair()
        held = []

        def hold_seq_0(side, pdu):
            if side == "a" and isinstance(pdu, DataPdu) and pdu.seq == 0 \
                    and not held:
                held.append(pdu)
                return True
            return False
        wire.drop_filter = hold_seq_0
        for index in range(5):
            a.send(index, 100)
        engine.run(until=10.0)
        assert [payload for payload, _s in db] == [0, 1, 2, 3, 4]

    @settings(max_examples=25, deadline=None)
    @given(st.sets(st.integers(min_value=0, max_value=29), max_size=12))
    def test_property_any_single_round_loss_pattern_recovers(self, lost_seqs):
        engine, wire, a, _b, _da, db = make_pair()
        remaining = set(lost_seqs)

        def drop_once(side, pdu):
            if side == "a" and isinstance(pdu, DataPdu) and pdu.seq in remaining:
                remaining.discard(pdu.seq)
                return True
            return False
        wire.drop_filter = drop_once
        for index in range(30):
            a.send(index, 50)
        engine.run(until=60.0)
        assert [payload for payload, _s in db] == list(range(30))
        assert a.all_acknowledged()


class TestWindowAndBackpressure:
    def test_send_buffer_limit_gives_backpressure(self):
        policy = EfcpPolicy(send_buffer_limit=5)
        engine, _w, a, _b, _da, _db = make_pair(policy)
        results = [a.send(i, 10) for i in range(10)]
        assert results[:5] == [True] * 5
        assert results[5:] == [False] * 5
        assert a.stats.send_rejected == 5

    def test_credit_window_blocks_transmission(self):
        policy = EfcpPolicy(initial_credit=4)
        engine, wire, a, _b, _da, db = make_pair(policy)
        # block acks so the window cannot slide
        wire.drop_filter = lambda side, pdu: side == "b"
        for index in range(10):
            a.send(index, 10)
        engine.run(until=0.1)
        assert len(wire.data_sent("a")) == 4
        assert a.queued_count() == 6

    def test_window_slides_on_credit(self):
        policy = EfcpPolicy(initial_credit=4)
        engine, _w, a, _b, _da, db = make_pair(policy)
        for index in range(20):
            a.send(index, 10)
        engine.run(until=10.0)
        assert len(db) == 20

    def test_outstanding_count_tracks_unacked(self):
        engine, wire, a, _b, _da, _db = make_pair()
        wire.drop_filter = lambda side, pdu: side == "b"
        a.send("x", 10)
        engine.run(until=0.05)
        assert a.outstanding_count() == 1


class TestRtoEstimation:
    def test_srtt_converges_to_path_rtt(self):
        engine, _w, a, _b, _da, _db = make_pair(delay=0.02)
        for index in range(30):
            a.send(index, 10)
        engine.run(until=5.0)
        assert a.srtt == pytest.approx(0.04, rel=0.3)

    def test_rto_backs_off_exponentially(self):
        policy = EfcpPolicy(rto_initial=0.1, rto_max=10.0)
        engine, wire, a, _b, _da, _db = make_pair(policy)
        wire.drop_filter = lambda side, pdu: True  # total blackout
        a.send("x", 10)
        engine.run(until=1.0)
        assert a.stats.timeouts >= 2
        assert a.rto > 0.1

    def test_rto_respects_bounds(self):
        policy = EfcpPolicy(rto_initial=0.1, rto_min=0.05, rto_max=0.4)
        engine, wire, a, _b, _da, _db = make_pair(policy)
        wire.drop_filter = lambda side, pdu: True
        a.send("x", 10)
        engine.run(until=5.0)
        assert a.rto <= 0.4

    def test_stall_callback_after_max_retries(self):
        stalls = []
        engine = Engine()
        wire = Wire(engine)
        policy = EfcpPolicy(rto_initial=0.05, rto_max=0.1, max_retries=3)
        a = EfcpConnection(engine, Address(1), Address(2), 1, 2, policy,
                           output=wire.output_from("a"),
                           deliver=lambda p, s: None,
                           on_stall=lambda: stalls.append(engine.now))
        b = EfcpConnection(engine, Address(2), Address(1), 2, 1, policy,
                           output=wire.output_from("b"),
                           deliver=lambda p, s: None)
        wire.a, wire.b = a, b
        wire.drop_filter = lambda side, pdu: True
        a.send("x", 10)
        engine.run(until=5.0)
        assert stalls
        assert not a.closed  # give_up defaults to False

    def test_give_up_policy_closes_connection(self):
        engine = Engine()
        wire = Wire(engine)
        policy = EfcpPolicy(rto_initial=0.05, rto_max=0.1, max_retries=2,
                            give_up=True)
        closed = []
        a = EfcpConnection(engine, Address(1), Address(2), 1, 2, policy,
                           output=wire.output_from("a"),
                           deliver=lambda p, s: None,
                           on_close=lambda: closed.append(True))
        b = EfcpConnection(engine, Address(2), Address(1), 2, 1, policy,
                           output=wire.output_from("b"),
                           deliver=lambda p, s: None)
        wire.a, wire.b = a, b
        wire.drop_filter = lambda side, pdu: True
        a.send("x", 10)
        engine.run(until=5.0)
        assert a.closed and closed


class TestFastRetransmit:
    def test_sack_passes_trigger_retransmit_before_rto(self):
        policy = EfcpPolicy(rto_initial=5.0, rto_min=5.0, rto_max=10.0)
        engine, wire, a, _b, _da, db = make_pair(policy)
        dropped = []

        def drop_seq_0_once(side, pdu):
            if side == "a" and isinstance(pdu, DataPdu) and pdu.seq == 0 \
                    and not dropped:
                dropped.append(pdu)
                return True
            return False
        wire.drop_filter = drop_seq_0_once
        for index in range(8):
            a.send(index, 10)
        engine.run(until=2.0)  # far below the 5 s RTO
        assert [payload for payload, _s in db] == list(range(8))
        assert a.stats.retransmissions >= 1
        assert a.stats.timeouts == 0


class TestGoBackN:
    def test_gobackn_recovers(self):
        policy = EfcpPolicy(retx=RETX_GOBACKN, rto_initial=0.05)
        engine, wire, a, _b, _da, db = make_pair(policy)
        dropped = []

        def drop_seq_1_once(side, pdu):
            if side == "a" and isinstance(pdu, DataPdu) and pdu.seq == 1 \
                    and not dropped:
                dropped.append(pdu)
                return True
            return False
        wire.drop_filter = drop_seq_1_once
        for index in range(6):
            a.send(index, 10)
        engine.run(until=5.0)
        assert [payload for payload, _s in db] == list(range(6))

    def test_gobackn_retransmits_whole_window(self):
        policy = EfcpPolicy(retx=RETX_GOBACKN, rto_initial=0.05)
        engine, wire, a, _b, _da, _db = make_pair(policy)
        blackout = [True]
        wire.drop_filter = lambda side, pdu: blackout[0]
        for index in range(5):
            a.send(index, 10)
        engine.run(until=0.2)
        retx_selective_would = 5  # selective sends aged pdus once each too
        assert a.stats.retransmissions >= 5


class TestUnreliableModes:
    def test_unreliable_delivers_what_arrives(self):
        policy = EfcpPolicy(reliable=False, in_order=False)
        engine, wire, a, _b, _da, db = make_pair(policy)
        wire.drop_filter = (lambda side, pdu:
                            side == "a" and isinstance(pdu, DataPdu)
                            and pdu.seq % 2 == 0)
        for index in range(10):
            a.send(index, 10)
        engine.run(until=2.0)
        assert [payload for payload, _s in db] == [1, 3, 5, 7, 9]
        assert a.stats.retransmissions == 0

    def test_unreliable_sends_no_acks(self):
        policy = EfcpPolicy(reliable=False, in_order=False)
        engine, wire, a, _b, _da, _db = make_pair(policy)
        for index in range(5):
            a.send(index, 10)
        engine.run(until=1.0)
        assert not [p for s, p in wire.sent
                    if s == "b" and isinstance(p, ControlPdu)]

    def test_unreliable_in_order_drops_late_arrivals(self):
        policy = EfcpPolicy(reliable=False, in_order=True)
        engine, wire, a, b, _da, db = make_pair(policy)
        for index in range(3):
            a.send(index, 10)
        engine.run(until=1.0)
        # inject an old sequence number
        late = DataPdu(Address(1), Address(2), 10, 20, 0, "late", 10)
        b.handle_data(late)
        assert [payload for payload, _s in db] == [0, 1, 2]

    def test_reliable_without_retx_policy_rejected(self):
        with pytest.raises(ValueError):
            EfcpPolicy(reliable=True, retx=RETX_NONE)


class TestAimdCongestion:
    def test_slow_start_grows_window(self):
        policy = EfcpPolicy(congestion=CONGESTION_AIMD, initial_cwnd=2,
                            initial_credit=1000, send_buffer_limit=2000)
        engine, _w, a, _b, _da, db = make_pair(policy)
        start_cwnd = a.cwnd
        for index in range(200):
            a.send(index, 10)
        engine.run(until=20.0)
        assert len(db) == 200
        assert a.cwnd > start_cwnd

    def test_timeout_collapses_window(self):
        policy = EfcpPolicy(congestion=CONGESTION_AIMD, initial_cwnd=8,
                            rto_initial=0.05, initial_credit=1000)
        engine, wire, a, _b, _da, _db = make_pair(policy)
        wire.drop_filter = lambda side, pdu: True
        for index in range(8):
            a.send(index, 10)
        engine.run(until=0.5)
        assert a.cwnd == 1.0


class TestPolicyDerivation:
    def test_policy_from_cube(self):
        policy = EfcpPolicy.for_cube(RELIABLE)
        assert policy.reliable and policy.in_order
        assert policy.retx == RETX_SELECTIVE

    def test_policy_from_best_effort_cube(self):
        policy = EfcpPolicy.for_cube(BEST_EFFORT)
        assert not policy.reliable
        assert policy.retx == RETX_NONE

    def test_overrides_win(self):
        policy = EfcpPolicy.for_cube(RELIABLE, rto_initial=9.0)
        assert policy.rto_initial == 9.0

    def test_unknown_retx_policy_rejected(self):
        with pytest.raises(ValueError):
            EfcpPolicy(retx="bogus")

    def test_unknown_congestion_policy_rejected(self):
        with pytest.raises(ValueError):
            EfcpPolicy(congestion="bogus")

    def test_credit_window_must_be_positive(self):
        with pytest.raises(ValueError):
            EfcpPolicy(initial_credit=0)


class TestClose:
    def test_close_discards_state_and_stops_sending(self):
        engine, _w, a, _b, _da, _db = make_pair()
        a.send("x", 10)
        a.close()
        assert a.closed
        assert not a.send("y", 10)
        engine.run(until=1.0)

    def test_close_idempotent(self):
        _engine, _w, a, _b, _da, _db = make_pair()
        a.close()
        a.close()
