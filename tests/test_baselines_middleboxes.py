"""Tests for the baseline middleboxes: NAT and Mobile-IP."""

import pytest

from repro.baselines import HomeAgent, MobileNode, NatBox, ip, ip_str
from repro.baselines.sockets import Host
from repro.sim.network import Network


def nat_site(port_pool=8, seed=1):
    """host(192.168.0.2) - gw[NAT] - server(100.64.0.2)."""
    network = Network(seed=seed)
    for name in ("h", "gw", "srv"):
        network.add_node(name)
    network.connect("h", "gw")
    network.connect("gw", "srv")
    h = Host(network.node("h"))
    gw = Host(network.node("gw"), forwarding=True)
    srv = Host(network.node("srv"))
    h.ip.add_interface("if0", ip("192.168.0.2"), 30)
    gw.ip.add_interface("if0", ip("192.168.0.1"), 30)
    gw.ip.add_interface("if1", ip("100.64.0.1"), 30)
    srv.ip.add_interface("if0", ip("100.64.0.2"), 30)
    h.ip.add_route(ip("192.168.0.0"), 30, None, "if0")
    h.ip.add_route(0, 0, ip("192.168.0.1"), "if0")
    gw.ip.add_route(ip("192.168.0.0"), 30, None, "if0")
    gw.ip.add_route(ip("100.64.0.0"), 30, None, "if1")
    srv.ip.add_route(ip("100.64.0.0"), 30, None, "if0")
    nat = NatBox(gw.ip, ip("192.168.0.0"), 16, ip("100.64.0.1"),
                 port_pool=port_pool)
    return network, h, gw, srv, nat


class TestNat:
    def test_outbound_flow_translated_and_works(self):
        network, h, _gw, srv, nat = nat_site()
        accepted = []
        srv.tcp.listen(80, accepted.append)
        conn = h.tcp.connect(ip("192.168.0.2"), ip("100.64.0.2"), 80)
        network.run(until=2.0)
        assert conn.established
        # server saw the NAT's public address, not the private one
        assert accepted[0].remote_ip == ip("100.64.0.1")
        assert nat.active_mappings() == 1
        assert nat.translations_out > 0 and nat.translations_in > 0

    def test_pool_exhaustion_refuses_new_flows(self):
        network, h, _gw, srv, nat = nat_site(port_pool=2)
        srv.tcp.listen(80, lambda c: None)
        conns = [h.tcp.connect(ip("192.168.0.2"), ip("100.64.0.2"), 80)
                 for _ in range(4)]
        network.run(until=30.0)
        assert sum(1 for c in conns if c.established) == 2
        assert nat.drops_pool_exhausted > 0

    def test_unsolicited_inbound_dropped(self):
        network, h, _gw, srv, nat = nat_site()
        h.tcp.listen(8080, lambda c: None)
        conn = srv.tcp.connect(ip("100.64.0.2"), ip("100.64.0.1"), 8080)
        network.run(until=30.0)
        assert not conn.established
        assert nat.drops_no_mapping > 0

    def test_release_frees_mapping(self):
        network, h, _gw, srv, nat = nat_site()
        srv.tcp.listen(80, lambda c: None)
        conn = h.tcp.connect(ip("192.168.0.2"), ip("100.64.0.2"), 80)
        network.run(until=2.0)
        nat.release(ip("192.168.0.2"), conn.local_port, 6)
        assert nat.active_mappings() == 0


def mobileip_world(seed=1):
    """corr - core - home_rtr(HA) - m ; core - foreign_rtr - m (two radios)."""
    from repro.baselines.sockets import IpFabric
    network = Network(seed=seed)
    for name in ("corr", "core", "home", "foreign", "m"):
        network.add_node(name)
    network.connect("m", "home", name="radio:home")
    network.connect("m", "foreign", name="radio:foreign")
    network.connect("home", "core")
    network.connect("foreign", "core")
    network.connect("corr", "core")
    fabric = IpFabric(network, routers=["home", "foreign", "core"])
    return network, fabric


class TestMobileIp:
    def test_registration_and_tunneling(self):
        network, fabric = mobileip_world()
        m, corr, home = (fabric.host(n) for n in ("m", "corr", "home"))
        home_address = m.addr("if0")
        # the HA's own address is its stable core-facing interface (the
        # radio subnet dies with the mobile's departure)
        agent_ip = home.addr("if1")
        agent = HomeAgent(home.ip, home.udp, agent_ip)
        mobile = MobileNode(network.engine, m.ip, m.udp, home_address,
                            agent_ip)
        got = []
        m.udp.bind(7, lambda payload, size, src, sport: got.append(payload))
        network.links["radio:home"].fail()
        # rehome the mobile's routing to the foreign attachment
        stack = m.ip
        stack.clear_routes()
        for ifname, ip_if in stack.interfaces.items():
            if ip_if.up:
                prefix, plen = ip_if.network
                stack.add_route(prefix, plen, None, ifname)
        new_if = stack.interfaces["if1"]
        peer = (new_if.address & ~3) + (1 if (new_if.address & 3) == 2 else 2)
        stack.add_route(0, 0, peer, "if1")
        mobile.move_to(m.addr("if1"))
        network.run(until=3.0)
        assert mobile.registered
        assert agent.binding_for(home_address) == m.addr("if1")
        # correspondent sends to the HOME address; HA tunnels to care-of
        corr.udp.sendto(corr.addr(), 999, home_address, 7, b"to-mobile", 9)
        network.run(until=5.0)
        assert got == [b"to-mobile"]
        assert agent.packets_tunneled >= 1
        assert mobile.tunnel_deliveries >= 1

    def test_registration_rtt_recorded(self):
        network, fabric = mobileip_world()
        m, home = fabric.host("m"), fabric.host("home")
        HomeAgent(home.ip, home.udp, home.addr("if1"))
        mobile = MobileNode(network.engine, m.ip, m.udp, m.addr("if0"),
                            home.addr("if1"))
        mobile.move_to(m.addr("if1"))
        network.run(until=3.0)
        assert len(mobile.registration_rtts) == 1
        assert mobile.registration_rtts[0] > 0

    def test_deregistration_returns_home(self):
        network, fabric = mobileip_world()
        m, home = fabric.host("m"), fabric.host("home")
        agent = HomeAgent(home.ip, home.udp, home.addr("if1"))
        mobile = MobileNode(network.engine, m.ip, m.udp, m.addr("if0"),
                            home.addr("if1"))
        mobile.move_to(m.addr("if1"))
        network.run(until=3.0)
        assert agent.binding_for(m.addr("if0")) is not None
        mobile.return_home()
        network.run(until=5.0)
        assert agent.binding_for(m.addr("if0")) is None

    def test_unreachable_home_agent_stops_retrying(self):
        network, fabric = mobileip_world()
        m, home = fabric.host("m"), fabric.host("home")
        mobile = MobileNode(network.engine, m.ip, m.udp, m.addr("if0"),
                            home.addr("if1"), registration_timeout=0.2,
                            max_retries=3)
        network.links["radio:home"].fail()
        network.links["radio:foreign"].fail()   # fully cut off
        mobile.move_to(m.addr("if1"))
        network.run(until=10.0)
        assert not mobile.registered
        assert mobile.registrations_sent == 4  # 1 + 3 retries
