"""Tests for the shared broadcast medium and the multi-access shim DIF."""

import pytest

from repro.core import (ApplicationName, Dif, DifPolicies, FlowWaiter,
                        MessageFlow, Orchestrator, build_dif_over,
                        make_systems, run_until)
from repro.core.qos import RELIABLE
from repro.sim.broadcast import BroadcastMedium
from repro.sim.engine import Engine
from repro.sim.link import UniformLoss
from repro.sim.network import Network


class TestBroadcastMedium:
    def _medium(self, n=3, **kwargs):
        engine = Engine()
        medium = BroadcastMedium(engine, "cell", **kwargs)
        inboxes = []
        for index in range(n):
            endpoint = medium.attach_endpoint()
            box = []
            endpoint.attach(lambda p, s, b=box: b.append(p))
            inboxes.append(box)
        return engine, medium, inboxes

    def test_everyone_but_sender_hears(self):
        engine, medium, inboxes = self._medium(4)
        medium.endpoints[1].send("hello", 100)
        engine.run()
        assert inboxes[0] == ["hello"]
        assert inboxes[1] == []          # not the sender
        assert inboxes[2] == ["hello"]
        assert inboxes[3] == ["hello"]

    def test_channel_serializes_transmissions(self):
        engine, medium, inboxes = self._medium(2, capacity_bps=1e6, delay=0.0)
        heard = []
        medium.endpoints[1].attach(lambda p, s: heard.append(engine.now))
        medium.endpoints[0].send("a", 1250)   # 10 ms air time each
        medium.endpoints[0].send("b", 1250)
        engine.run()
        assert heard == pytest.approx([0.01, 0.02])

    def test_per_receiver_loss(self):
        import random
        engine = Engine()
        medium = BroadcastMedium(engine, "cell", loss=UniformLoss(0.5),
                                 rng=random.Random(4))
        boxes = []
        for _ in range(3):
            endpoint = medium.attach_endpoint()
            box = []
            endpoint.attach(lambda p, s, b=box: b.append(p))
            boxes.append(box)
        for _ in range(100):
            medium.endpoints[0].send("x", 50)
        engine.run()
        # receivers lose independently: roughly half each, not identical
        assert 20 < len(boxes[1]) < 80
        assert 20 < len(boxes[2]) < 80
        assert medium.deliveries_lost > 0

    def test_jammed_medium_drops(self):
        engine, medium, inboxes = self._medium(2)
        medium.fail()
        assert not medium.endpoints[0].send("x", 10)
        medium.repair()
        assert medium.endpoints[0].send("x", 10)
        engine.run()
        assert inboxes[1] == ["x"]

    def test_queue_limit(self):
        engine, medium, _ = self._medium(2, capacity_bps=1e3, queue_limit=2)
        results = [medium.endpoints[0].send("x", 1000) for _ in range(5)]
        assert results.count(False) >= 2


class TestBroadcastShim:
    def _cell(self, names=("bs", "m1", "m2"), seed=1, loss=None):
        network = Network(seed=seed)
        medium = BroadcastMedium(network.engine, "cell", capacity_bps=2e7,
                                 delay=0.002, loss=loss,
                                 rng=network.streams.stream("cell"))
        for name in names:
            network.add_node(name)
        systems = make_systems(network)
        shims = {}
        for name in names:
            endpoint = medium.attach_endpoint(name)
            shims[name] = systems[name].add_broadcast_shim(endpoint, "cell")
        return network, systems, shims, medium

    def test_flow_discovered_by_whohas(self):
        network, systems, shims, _medium = self._cell()
        inbound = []
        shims["bs"].register_app(ApplicationName("svc"), inbound.append)
        flow = shims["m1"].allocate_flow(ApplicationName("cli"),
                                         ApplicationName("svc"))
        run_until(network, lambda: flow.allocated, timeout=5)
        assert flow.allocated and inbound

    def test_unknown_app_times_out(self):
        network, systems, shims, _medium = self._cell()
        flow = shims["m1"].allocate_flow(ApplicationName("cli"),
                                         ApplicationName("ghost"))
        waiter = FlowWaiter(flow)
        run_until(network, waiter.done, timeout=10)
        assert not waiter.ok and waiter.reason == "no-such-app"

    def test_unicast_data_not_heard_by_third_party(self):
        network, systems, shims, _medium = self._cell()
        inbound = []
        shims["bs"].register_app(ApplicationName("svc"), inbound.append)
        third_party_flows = []
        shims["m2"].register_app(ApplicationName("svc2"),
                                 third_party_flows.append)
        flow = shims["m1"].allocate_flow(ApplicationName("cli"),
                                         ApplicationName("svc"))
        run_until(network, lambda: flow.allocated, timeout=5)
        got = []
        inbound[0].set_receiver(lambda p, s: got.append(p))
        flow.send("secret", 10)
        network.run(until=network.engine.now + 1.0)
        assert got == ["secret"]
        assert third_party_flows == []   # m2 saw nothing above its shim

    def test_two_concurrent_flows_from_different_members(self):
        network, systems, shims, _medium = self._cell()
        inbound = []
        shims["bs"].register_app(ApplicationName("svc"), inbound.append)
        flow1 = shims["m1"].allocate_flow(ApplicationName("c1"),
                                          ApplicationName("svc"))
        flow2 = shims["m2"].allocate_flow(ApplicationName("c2"),
                                          ApplicationName("svc"))
        run_until(network, lambda: flow1.allocated and flow2.allocated,
                  timeout=5)
        assert len(inbound) == 2

    def test_dif_over_broadcast_cell(self):
        """A full DIF whose three members all share one radio cell."""
        network, systems, shims, _medium = self._cell()
        dif = Dif("cellnet", DifPolicies(keepalive_interval=1.0))
        orchestrator = Orchestrator(network)
        build_dif_over(orchestrator, dif, systems, adjacencies=[
            ("m1", "bs", "cell"),
            ("m2", "bs", "cell")])
        orchestrator.run(timeout=30)
        assert dif.member_count() == 3
        # end-to-end m1 -> m2 (relayed by the base station member)
        received = []

        def on_flow(flow):
            mf = MessageFlow(network.engine, flow)
            mf.set_message_receiver(received.append)
            on_flow.keep = mf
        systems["m2"].register_app(ApplicationName("peer"), on_flow)
        network.run(until=network.engine.now + 0.5)
        flow = systems["m1"].allocate_flow(ApplicationName("cli"),
                                           ApplicationName("peer"),
                                           qos=RELIABLE)
        waiter = FlowWaiter(flow)
        run_until(network, waiter.done, timeout=10)
        assert waiter.ok
        MessageFlow(network.engine, flow).send_message(b"over the air")
        run_until(network, lambda: received, timeout=10)
        assert received == [b"over the air"]
        assert systems["bs"].ipcp("cellnet").rmt.pdus_relayed > 0

    def test_dif_over_lossy_cell(self):
        network, systems, shims, medium = self._cell(
            loss=UniformLoss(0.15))
        dif = Dif("cellnet", DifPolicies(keepalive_interval=1.0,
                                         dead_factor=8,
                                         mgmt_timeout=1.0,
                                         enroll_attempts=8))
        orchestrator = Orchestrator(network)
        build_dif_over(orchestrator, dif, systems, adjacencies=[
            ("m1", "bs", "cell"),
            ("m2", "bs", "cell")])
        orchestrator.run(timeout=120)
        assert dif.member_count() == 3
