"""Tests for declarative policy specification (§8)."""

import json

import pytest

from repro.core.addressing import FlatAddressing, TopologicalAddressing
from repro.core.auth import (AllowList, ChallengeResponse, DenyAll, NoAuth,
                             PresharedKey)
from repro.core.names import ApplicationName
from repro.core.policy_spec import (PolicySpecError, load_policy_file,
                                    policies_from_spec, spec_from_policies)
from repro.core.rmt import DrrScheduler, PriorityScheduler


class TestCompilation:
    def test_empty_spec_gives_defaults(self):
        policies = policies_from_spec({})
        assert isinstance(policies.addressing, FlatAddressing)
        assert isinstance(policies.auth, NoAuth)
        assert policies.scheduler == "fifo"

    def test_full_spec_compiles(self):
        policies = policies_from_spec({
            "addressing": {"type": "topological"},
            "auth": {"type": "challenge-response", "secret": "s"},
            "access": {"type": "allow-list", "sources": ["ops", "billing/2"]},
            "scheduler": {"type": "drr", "quantum": 3000},
            "path_selector": "round-robin",
            "keepalive": {"interval": 0.2, "dead_factor": 4},
            "routing": {"spf_delay": 0.05, "refresh_interval": None},
            "efcp": {"rto_min": 0.005},
            "efcp_cubes": {"bulk": {"congestion": "aimd"}},
            "qos_cubes": [{"name": "voice", "max_delay": 0.03,
                           "priority": 0, "loss_tolerance": 0.05}],
            "limits": {"max_members": 64},
            "flooding": {"attempts": 6, "ack_timeout": 0.2},
            "mgmt": {"timeout": 2.0, "enroll_attempts": 5},
            "admission": {"type": "guaranteed-bandwidth",
                          "capacity_bps": 1e7},
        })
        assert isinstance(policies.addressing, TopologicalAddressing)
        assert isinstance(policies.auth, ChallengeResponse)
        assert isinstance(policies.access, AllowList)
        assert policies.scheduler == "drr"
        assert policies.scheduler_kwargs == {"quantum": 3000}
        assert isinstance(policies.make_scheduler(), DrrScheduler)
        assert policies.keepalive_interval == 0.2
        assert policies.refresh_interval is None
        assert policies.efcp_overrides == {"rto_min": 0.005}
        assert policies.efcp_cube_overrides["bulk"] == {"congestion": "aimd"}
        assert "voice" in policies.qos_cubes
        assert policies.qos_cubes["voice"].priority == 0
        assert policies.max_members == 64
        assert policies.flood_attempts == 6
        assert policies.admission_capacity_bps == 1e7
        # defaults still present alongside custom cubes
        assert "reliable" in policies.qos_cubes

    def test_scheduler_as_plain_string(self):
        policies = policies_from_spec({"scheduler": "priority"})
        assert isinstance(policies.make_scheduler(), PriorityScheduler)

    def test_access_allow_list_parses_instances(self):
        policies = policies_from_spec({
            "access": {"type": "allow-list", "sources": ["svc/3"]}})
        assert policies.access.allow(ApplicationName("svc", "3"),
                                     ApplicationName("x"))

    def test_psk_auth(self):
        policies = policies_from_spec({"auth": {"type": "psk", "secret": "k"}})
        assert isinstance(policies.auth, PresharedKey)

    def test_deny_all_access(self):
        policies = policies_from_spec({"access": {"type": "deny-all"}})
        assert isinstance(policies.access, DenyAll)


class TestValidation:
    def test_unknown_section_rejected(self):
        with pytest.raises(PolicySpecError):
            policies_from_spec({"frobnication": {}})

    def test_unknown_auth_type_rejected(self):
        with pytest.raises(PolicySpecError):
            policies_from_spec({"auth": {"type": "magic"}})

    def test_psk_without_secret_rejected(self):
        with pytest.raises(PolicySpecError):
            policies_from_spec({"auth": {"type": "psk"}})

    def test_allow_list_without_sources_rejected(self):
        with pytest.raises(PolicySpecError):
            policies_from_spec({"access": {"type": "allow-list"}})

    def test_unknown_addressing_rejected(self):
        with pytest.raises(PolicySpecError):
            policies_from_spec({"addressing": {"type": "astral"}})

    def test_bad_scheduler_rejected(self):
        with pytest.raises(PolicySpecError):
            policies_from_spec({"scheduler": "bogus"})

    def test_cube_without_name_rejected(self):
        with pytest.raises(PolicySpecError):
            policies_from_spec({"qos_cubes": [{"priority": 1}]})

    def test_admission_without_capacity_rejected(self):
        with pytest.raises(PolicySpecError):
            policies_from_spec({"admission": {"type": "guaranteed-bandwidth"}})

    def test_unknown_admission_rejected(self):
        with pytest.raises(PolicySpecError):
            policies_from_spec({"admission": {"type": "oracle"}})


class TestRoundTripAndFiles:
    def test_spec_round_trip_preserves_key_knobs(self):
        original = policies_from_spec({
            "addressing": {"type": "topological"},
            "scheduler": {"type": "priority"},
            "keepalive": {"interval": 0.5},
            "efcp": {"rto_min": 0.01},
            "admission": {"type": "guaranteed-bandwidth",
                          "capacity_bps": 5e6},
        })
        spec = spec_from_policies(original)
        rebuilt = policies_from_spec({k: v for k, v in spec.items()
                                      if k != "lower_flow_cube"})
        assert rebuilt.addressing.describe() == "topological"
        assert rebuilt.scheduler == "priority"
        assert rebuilt.keepalive_interval == 0.5
        assert rebuilt.efcp_overrides["rto_min"] == 0.01
        assert rebuilt.admission_capacity_bps == 5e6

    def test_spec_is_json_serializable(self):
        spec = spec_from_policies(policies_from_spec({}))
        json.dumps(spec)

    def test_load_policy_file(self, tmp_path):
        path = tmp_path / "dif.json"
        path.write_text(json.dumps({"scheduler": "drr",
                                    "keepalive": {"interval": 0.3}}))
        policies = load_policy_file(str(path))
        assert policies.scheduler == "drr"
        assert policies.keepalive_interval == 0.3

    def test_load_non_object_file_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(PolicySpecError):
            load_policy_file(str(path))
