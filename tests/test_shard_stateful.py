"""Stateful control-plane sharding: the acceptance contract of the
wire-codec refactor.

The headline claim under test: the flat configuration's *control
plane* — enrollment handshakes, RIEP exchange, LSA flooding, routing,
keepalives — run region-sharded across engine (and process) boundaries
produces **bit-identical** results to the unsharded build: the same
enrollment completion floats, the same assigned addresses, the same
routing tables and LSDB contents (pinned as per-member RIB SHA-256s).
Every frame that crosses a cut does so as pure wire data through
``repro.core.codec`` — no live object references ever sit in a
``BoundaryFrame``.
"""

import hashlib

import pytest

from repro.core import codec
from repro.experiments.e6_scalability import (balanced_assignment,
                                              build_flood_spec,
                                              build_stateful_workload,
                                              flood_assignment,
                                              region_weights,
                                              run_stateful_scale)
from repro.shard import (RegionPlan, ShardEngine, all_nodes_announce,
                         run_sharded, run_unsharded, run_unsharded_stateful)

#: Golden fingerprints of the canned stateful case (E6 plant at 3x2,
#: seed 0): the combined node-stats rendering of the unsharded build,
#: and the per-shard traces of its 2-way split.  Node-stats and rows
#: captured at the wire codec's introduction (PR 5); the per-shard
#: traces were recaptured when the async-grants protocol landed,
#: because their final ``clock=`` line now renders the protocol-
#: invariant ``Engine.last_event_time`` instead of the parked grant
#: horizon (every event, counter, and stat line is unchanged).  A
#: mismatch means a change leaked into the control plane's observable
#: behavior — enrollment timing, address assignment, LSA contents, or
#: the codec itself.
GOLDEN_STATEFUL_NODE_STATS = \
    "dfe1ab44ecdba485ff4ec76dd3147fde154149da922bf90046816f7f924b32ef"
GOLDEN_STATEFUL_ROWS = \
    "d33d38b2df3eed4be4cde09506512a8d4146fdee6dd5a27a6e2cb1e1ff931bb0"
GOLDEN_STATEFUL_SHARDS = {
    0: "d6c3513b1fe73eb6d67d4937a2a1f47fe3c5a3bfa438ea978ffa69763fa34c2a",
    1: "81ea00a5f9242f33cd5ed6c2d05db56aeb137f7275b27a69bcb7bec127a99cad",
}


def canned_stateful(regions=3, hosts=2, shards=2, balance=False):
    spec = build_flood_spec(regions, hosts)
    workload = build_stateful_workload(regions, hosts)
    plan = RegionPlan(spec, flood_assignment(regions, hosts, shards,
                                             balance=balance))
    return spec, plan, workload


def digest(rows):
    return hashlib.sha256(
        "\n".join(repr(row) for row in rows).encode()).hexdigest()


# ----------------------------------------------------------------------
# Equivalence: the acceptance-criteria contract
# ----------------------------------------------------------------------
class TestStatefulEquivalence:
    def test_two_shard_split_matches_unsharded_build_exactly(self):
        spec, plan, workload = canned_stateful()
        reference = run_unsharded_stateful(spec, workload, seed=0)
        sharded = run_sharded(plan, workload, seed=0, mode="inline",
                              until=workload["until"])
        # everyone enrolled, and the *whole* control-plane outcome —
        # enrollment floats, addresses, tables, LSDBs — is bit-identical
        assert reference["enrolled"] == len(spec.nodes)
        assert sharded.rows == reference["rows"]
        assert sharded.node_stats == reference["node_stats"]
        assert sharded.events == reference["events"]
        assert sharded.frames_relayed > 0
        # a member's table covers the whole flat DIF (routing converged)
        assert all(row["table_size"] == len(spec.nodes) - 1
                   for row in sharded.node_stats)

    def test_unsharded_build_matches_golden_fingerprints(self):
        spec, _plan, workload = canned_stateful()
        reference = run_unsharded_stateful(spec, workload, seed=0)
        assert digest(reference["node_stats"]) == GOLDEN_STATEFUL_NODE_STATS
        assert digest(reference["rows"]) == GOLDEN_STATEFUL_ROWS

    def test_sharded_traces_match_golden_fingerprints(self):
        _spec, plan, workload = canned_stateful()
        result = run_sharded(plan, workload, seed=0, mode="inline",
                             until=workload["until"])
        assert {s["shard"]: s["trace_sha256"] for s in result.shards} == \
            GOLDEN_STATEFUL_SHARDS

    def test_process_mode_matches_inline_mode(self):
        _spec, plan, workload = canned_stateful()
        inline = run_sharded(plan, workload, seed=0, mode="inline",
                             until=workload["until"])
        process = run_sharded(plan, workload, seed=0, mode="process",
                              until=workload["until"])
        assert process.rows == inline.rows
        assert process.node_stats == inline.node_stats
        assert process.traces == inline.traces
        assert process.rounds == inline.rounds

    def test_three_way_split_keeps_the_rib(self):
        spec, _plan2, workload = canned_stateful()
        plan3 = RegionPlan(spec, flood_assignment(3, 2, 3))
        reference = run_unsharded_stateful(spec, workload, seed=0)
        sharded = run_sharded(plan3, workload, seed=0, mode="inline",
                              until=workload["until"])
        assert len(sharded.shards) == 3
        assert sharded.rows == reference["rows"]
        assert sharded.node_stats == reference["node_stats"]

    def test_stateful_scale_row_invariant_across_shard_counts(self):
        serial = run_stateful_scale(3, 2, shards=1, seed=1)
        sharded = run_stateful_scale(3, 2, shards=2, seed=1)
        balanced = run_stateful_scale(3, 2, shards=2, seed=1, balance=True)
        for key in ("systems", "enrolled", "table_rows", "lsas_received",
                    "rib_sha256", "events"):
            assert sharded[key] == serial[key], key
            assert balanced[key] == serial[key], key
        assert serial["shards"] == 1 and sharded["shards"] == 2
        assert sharded["frames_relayed"] > 0


# ----------------------------------------------------------------------
# The wire-data invariant at the cut
# ----------------------------------------------------------------------
class TestWireData:
    def test_boundary_frames_carry_no_live_objects(self):
        # drive both regions through hand-rolled lookahead rounds so
        # every frame can be inspected *before* injection: enrollment
        # allocs, RIEP handshakes, LSA floods, and keepalives all cross
        # as wire data, never as live objects
        from repro.core.pdu import ManagementPdu
        _spec, plan, workload = canned_stateful()
        shards = [ShardEngine(region, workload, seed=0)
                  for region in plan.regions]
        inboxes = [[] for _ in shards]
        seen_payloads = []
        for _round in range(4000):
            nexts = [s.next_event_time() for s in shards]
            activity = [t for t in nexts if t is not None]
            activity.extend(f[0] for inbox in inboxes for f in inbox)
            if not activity:
                break
            floor = min(activity)
            if floor > workload["until"] / 2:
                break
            for shard, inbox in zip(shards, inboxes):
                inbox.sort(key=lambda frame: frame[0])
                shard.inject(inbox)
            new_inboxes = [[] for _ in shards]
            for index, shard in enumerate(shards):
                lookahead = plan.regions[index].lookahead
                for frame in shard.run_to(floor + lookahead):
                    pair = plan.boundary_regions[frame[1]]
                    dest = pair[1] if pair[0] == index else pair[0]
                    new_inboxes[dest].append(frame)
                    seen_payloads.append(frame[2])
            inboxes = new_inboxes
        assert len(seen_payloads) > 0
        assert all(codec.is_wire_data(payload)
                   for payload in seen_payloads)
        # and the traffic really is the control plane: shim frames
        # wrapping management PDUs crossed the cut
        decoded = [codec.decode(payload) for payload in seen_payloads]
        assert any(isinstance(frame, tuple) and len(frame) == 4
                   and isinstance(frame[2], ManagementPdu)
                   for frame in decoded)

    def test_flood_frames_carry_no_live_objects(self):
        # the PR-4 workload rides the same codec path now
        spec = build_flood_spec(2, 2)
        plan = RegionPlan(spec, flood_assignment(2, 2, 2))
        shard1 = ShardEngine(plan.regions[1], all_nodes_announce(spec.nodes),
                             seed=0)
        frames = shard1.run_to(None)
        assert len(frames) > 0
        assert all(codec.is_wire_data(payload)
                   for _t, _l, payload, _s in frames)

    def test_wire_codec_links_are_behavior_invisible(self):
        # the transparency proof: the whole stateful build with *every*
        # link wire-faithful (encode at serialization end, decode at
        # delivery) is bit-identical to the live-object build
        spec, _plan, workload = canned_stateful()
        reference = run_unsharded_stateful(spec, workload, seed=0)
        faithful = run_unsharded_stateful(spec, workload, seed=0,
                                          codec=codec)
        assert faithful["rows"] == reference["rows"]
        assert faithful["node_stats"] == reference["node_stats"]
        assert faithful["events"] == reference["events"]
        assert faithful["clock"] == reference["clock"]


# ----------------------------------------------------------------------
# Adaptive shard balance (the cost-weighted partitioner)
# ----------------------------------------------------------------------
class TestShardBalance:
    def test_balanced_partition_tightens_the_round_barrier(self):
        # a skewed plant: one whale region and three minnows.  The
        # modulo spread lumps the whale with a minnow and the core;
        # the weighted partitioner isolates it, so the busiest shard
        # (the round barrier — every round waits for the slowest
        # engine) carries strictly less work.
        regions, hosts, shards = 4, [30, 2, 2, 2], 2
        weights = region_weights(regions, hosts)

        def max_load(assignment_fn):
            assignment = assignment_fn()
            load = {}
            for region in range(regions):
                shard = assignment[f"border{region}"]
                load[shard] = load.get(shard, 0.0) + weights[region]
            return max(load.values())

        modulo = max_load(lambda: flood_assignment(regions, hosts, shards))
        balanced = max_load(
            lambda: balanced_assignment(regions, hosts, shards))
        assert balanced < modulo
        # the barrier is visible in per-shard event totals too
        spec = build_flood_spec(regions, hosts)
        workload = all_nodes_announce(spec.nodes)

        def busiest_events(balance):
            plan = RegionPlan(spec, flood_assignment(regions, hosts, shards,
                                                     balance=balance))
            result = run_sharded(plan, workload, seed=0, mode="inline",
                                 collect_rows=False, collect_traces=False)
            return max(s["events"] for s in result.shards)

        assert busiest_events(balance=True) < busiest_events(balance=False)

    def test_balanced_partition_is_still_exact(self):
        # balance only relabels regions; delivery rows stay identical
        # to the unsharded run
        regions, hosts = 4, [6, 2, 2, 2]
        spec = build_flood_spec(regions, hosts)
        workload = all_nodes_announce(spec.nodes)
        reference = run_unsharded(spec, workload, seed=0)
        plan = RegionPlan(spec, balanced_assignment(regions, hosts, 2))
        sharded = run_sharded(plan, workload, seed=0, mode="inline")
        assert sharded.rows == reference["rows"]

    def test_core_rides_with_the_heaviest_region(self):
        assignment = balanced_assignment(4, [2, 40, 2, 2], 2)
        assert assignment["core"] == assignment["border1"]

    def test_uniform_plant_spreads_evenly(self):
        assignment = balanced_assignment(4, 3, 2)
        shards = {assignment[f"border{r}"] for r in range(4)}
        assert shards == {0, 1}
        counts = [sum(1 for r in range(4)
                      if assignment[f"border{r}"] == shard)
                  for shard in (0, 1)]
        assert counts == [2, 2]

    def test_skewed_spec_validates_lengths(self):
        with pytest.raises(ValueError, match="host counts"):
            build_flood_spec(3, [1, 2])


# ----------------------------------------------------------------------
# Worker-process golden checks (run under spawn in CI stateful-shard-smoke)
# ----------------------------------------------------------------------
def test_stateful_fingerprints_reproduce_inside_pool_workers():
    """Per-shard stateful traces produced inside a spawn-ed pool worker
    (coordinator in its in-process fallback) match the pinned digests —
    proof that the whole control plane, codec included, rebuilds from
    pure data in a fresh interpreter."""
    from repro.sweeps import Job, SweepRunner
    jobs = [Job("repro.experiments.e6_scalability:stateful_trace_digests",
                kwargs={"regions": 3, "hosts_per_region": 2, "shards": 2,
                        "seed": 0},
                group="golden-stateful", label="canned stateful split")] * 2
    rows = SweepRunner(workers=2, start_method="spawn").run(jobs)
    assert {row["shard"]: row["sha256"] for row in rows} == \
        GOLDEN_STATEFUL_SHARDS
