"""Shared conformance suite for every RMT scheduler policy.

The three disciplines (FIFO, strict priority, DRR) previously had only
spot checks; here one parametrized suite pins the properties the RMT
relies on regardless of policy:

* **work conservation** — a non-empty scheduler always serves something;
* **no reordering within a flow** — PDUs of one connection (same CEP
  pair, hence one priority class) leave in arrival order;
* **drop accounting** — every pushed PDU is either served exactly once or
  returned as displaced exactly once; occupancy never exceeds the limit
  and always equals pushes − drops − pops.
"""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.names import Address
from repro.core.pdu import DataPdu
from repro.core.rmt import DrrScheduler, FifoScheduler, PriorityScheduler

SCHEDULER_FACTORIES = {
    "fifo": lambda limit=256: FifoScheduler(limit=limit),
    "priority": lambda limit=256: PriorityScheduler(limit=limit),
    "drr": lambda limit=256: DrrScheduler(limit=limit, quantum=1500),
}

_seq = itertools.count()


def pdu(flow: int = 0, priority: int = 0, size: int = 100) -> DataPdu:
    """One PDU of a given flow; the flow id doubles as the CEP pair."""
    return DataPdu(Address(99), Address(1), flow, flow + 1000, next(_seq),
                   b"x", size, priority=priority)


@pytest.fixture(params=sorted(SCHEDULER_FACTORIES), ids=str)
def factory(request):
    return SCHEDULER_FACTORIES[request.param]


class TestWorkConservation:
    def test_nonempty_scheduler_always_serves(self, factory):
        scheduler = factory()
        for index in range(40):
            assert scheduler.push(pdu(flow=index % 3,
                                      priority=index % 4)) is None
        served = 0
        while len(scheduler) > 0:
            assert scheduler.pop() is not None, \
                "non-empty scheduler refused to serve"
            served += 1
        assert served == 40

    def test_empty_pop_returns_none(self, factory):
        scheduler = factory()
        assert scheduler.pop() is None
        scheduler.push(pdu())
        scheduler.pop()
        assert scheduler.pop() is None

    def test_drains_to_zero_after_interleaved_ops(self, factory):
        scheduler = factory()
        for round_ in range(10):
            for index in range(5):
                scheduler.push(pdu(flow=index, priority=index % 3))
            for _ in range(3):
                assert scheduler.pop() is not None
        while scheduler.pop() is not None:
            pass
        assert len(scheduler) == 0


class TestNoReorderingWithinFlow:
    def test_single_flow_strict_fifo(self, factory):
        scheduler = factory()
        pdus = [pdu(flow=7, priority=2) for _ in range(20)]
        for p in pdus:
            assert scheduler.push(p) is None
        out = [scheduler.pop() for _ in range(20)]
        assert [p.seq for p in out] == [p.seq for p in pdus]

    def test_interleaved_flows_keep_per_flow_order(self, factory):
        scheduler = factory()
        flows = {0: [], 1: [], 2: []}
        priorities = {0: 0, 1: 4, 2: 9}   # one class per flow
        for round_ in range(12):
            flow = round_ % 3
            p = pdu(flow=flow, priority=priorities[flow])
            flows[flow].append(p.seq)
            assert scheduler.push(p) is None
        served = {0: [], 1: [], 2: []}
        while True:
            p = scheduler.pop()
            if p is None:
                break
            served[p.src_cep].append(p.seq)
        for flow, sent in flows.items():
            assert served[flow] == sent, \
                f"flow {flow} reordered: {served[flow]} vs {sent}"


class TestMixedOpsOrderPreservation:
    """Regression suite for the deque refactor: per-flow FIFO order must
    survive arbitrary interleavings of enqueue and dequeue, not just the
    drain-after-fill patterns the earlier tests used."""

    def test_alternating_push_pop_single_flow(self, factory):
        scheduler = factory()
        sent, served = [], []
        for index in range(30):
            p = pdu(flow=3, priority=1)
            sent.append(p.seq)
            scheduler.push(p)
            if index % 2 == 1:          # pop every other round
                out = scheduler.pop()
                served.append(out.seq)
        while True:
            out = scheduler.pop()
            if out is None:
                break
            served.append(out.seq)
        assert served == sent

    def test_bursty_mixed_ops_keep_per_flow_order(self, factory):
        scheduler = factory()
        sent = {0: [], 1: [], 2: []}
        served = {0: [], 1: [], 2: []}
        priorities = {0: 0, 1: 3, 2: 7}
        for burst in range(8):
            for index in range(5):       # burst of pushes
                flow = (burst + index) % 3
                p = pdu(flow=flow, priority=priorities[flow])
                sent[flow].append(p.seq)
                scheduler.push(p)
            for _ in range(3):           # partial drain
                out = scheduler.pop()
                if out is not None:
                    served[out.src_cep].append(out.seq)
        while True:
            out = scheduler.pop()
            if out is None:
                break
            served[out.src_cep].append(out.seq)
        for flow in sent:
            assert served[flow] == sent[flow], f"flow {flow} reordered"

    @pytest.mark.parametrize("policy", sorted(SCHEDULER_FACTORIES))
    @settings(max_examples=60, deadline=None)
    @given(ops=st.lists(st.integers(min_value=-1, max_value=8), min_size=1,
                        max_size=150))
    def test_property_mixed_ops_never_reorder_a_flow(self, policy, ops):
        scheduler = SCHEDULER_FACTORIES[policy]()
        sent = {flow: [] for flow in range(3)}
        served = {flow: [] for flow in range(3)}
        for op in ops:
            if op < 0:
                out = scheduler.pop()
                if out is not None:
                    served[out.src_cep].append(out.seq)
            else:
                flow = op % 3
                p = pdu(flow=flow, priority=flow * 2)
                if scheduler.push(p) is None:
                    sent[flow].append(p.seq)
        while True:
            out = scheduler.pop()
            if out is None:
                break
            served[out.src_cep].append(out.seq)
        assert served == sent


class TestDropAccounting:
    def test_every_pdu_served_once_or_displaced_once(self, factory):
        limit = 8
        scheduler = factory(limit=limit)
        pushed, displaced = [], []
        for index in range(limit + 6):
            p = pdu(flow=index % 2, priority=index % 3)
            pushed.append(p)
            victim = scheduler.push(p)
            if victim is not None:
                displaced.append(victim)
            assert len(scheduler) <= limit
        assert len(displaced) == 6
        served = []
        while True:
            p = scheduler.pop()
            if p is None:
                break
            served.append(p)
        assert len(served) == limit
        # exact conservation, by identity
        assert ({id(p) for p in served} | {id(p) for p in displaced}
                == {id(p) for p in pushed})
        assert not ({id(p) for p in served} & {id(p) for p in displaced})

    def test_occupancy_tracks_pushes_minus_drops_minus_pops(self, factory):
        limit = 4
        scheduler = factory(limit=limit)
        occupancy = 0
        for index in range(20):
            victim = scheduler.push(pdu(flow=index % 3, priority=index % 4))
            if victim is None:
                occupancy += 1
            assert len(scheduler) == occupancy
            if index % 5 == 4:
                if scheduler.pop() is not None:
                    occupancy -= 1
                assert len(scheduler) == occupancy

    @pytest.mark.parametrize("policy", sorted(SCHEDULER_FACTORIES))
    @settings(max_examples=60, deadline=None)
    @given(ops=st.lists(st.integers(min_value=-1, max_value=11), min_size=1,
                        max_size=120))
    def test_property_random_op_sequences(self, policy, ops):
        limit = 6
        scheduler = SCHEDULER_FACTORIES[policy](limit=limit)
        live = 0
        pushed = served = displaced = 0
        for op in ops:
            if op < 0:
                if scheduler.pop() is not None:
                    served += 1
                    live -= 1
            else:
                pushed += 1
                if scheduler.push(pdu(flow=op % 3, priority=op % 4)) is None:
                    live += 1
                else:
                    displaced += 1
            assert 0 <= len(scheduler) <= limit
            assert len(scheduler) == live
        while scheduler.pop() is not None:
            served += 1
        assert served + displaced == pushed
