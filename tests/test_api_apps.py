"""Tests for the application API helpers and the bundled applications."""

import pytest

from repro.apps import (EchoClient, EchoServer, FileSender, FileSink, Mailbox,
                        MailRelay, RpcClient, RpcServer, send_mail)
from repro.core import (Dif, DifPolicies, FlowWaiter, MessageFlow,
                        Orchestrator, add_shims, build_dif_over, make_systems,
                        run_until, shim_between)
from repro.core.names import ApplicationName
from repro.sim.network import Network


def two_hosts(seed=1):
    network = Network(seed=seed)
    network.add_node("a")
    network.add_node("b")
    network.connect("a", "b")
    systems = make_systems(network)
    add_shims(systems, network)
    dif = Dif("net", DifPolicies(keepalive_interval=5.0))
    orchestrator = Orchestrator(network)
    build_dif_over(orchestrator, dif, systems,
                   adjacencies=[("a", "b", shim_between(network, "a", "b"))])
    orchestrator.run(timeout=30)
    return network, systems


class TestMessageFlow:
    def test_large_message_fragments_and_reassembles(self):
        network, systems = two_hosts()
        inbound = []
        systems["b"].register_app(ApplicationName("svc"), inbound.append)
        network.run(until=network.engine.now + 0.5)
        from repro.core.qos import RELIABLE
        flow = systems["a"].allocate_flow(ApplicationName("cli"),
                                          ApplicationName("svc"), qos=RELIABLE)
        waiter = FlowWaiter(flow)
        run_until(network, waiter.done, timeout=10)
        sender = MessageFlow(network.engine, flow, max_fragment=100)
        receiver = MessageFlow(network.engine, inbound[0])
        got = []
        receiver.set_message_receiver(got.append)
        big = bytes(range(256)) * 40   # 10240 bytes -> ~103 fragments
        sender.send_message(big)
        run_until(network, lambda: got, timeout=20)
        assert got == [big]
        assert sender.messages_sent == 1
        assert receiver.messages_received == 1

    def test_backlog_drains_under_backpressure(self):
        network, systems = two_hosts()
        inbound = []
        systems["b"].register_app(ApplicationName("svc"), inbound.append)
        network.run(until=network.engine.now + 0.5)
        from repro.core.qos import RELIABLE
        flow = systems["a"].allocate_flow(ApplicationName("cli"),
                                          ApplicationName("svc"), qos=RELIABLE)
        waiter = FlowWaiter(flow)
        run_until(network, waiter.done, timeout=10)
        sender = MessageFlow(network.engine, flow, max_fragment=500)
        receiver = MessageFlow(network.engine, inbound[0])
        got = []
        receiver.set_message_receiver(got.append)
        for index in range(50):
            sender.send_message(b"m%03d" % index + b"x" * 2000)
        run_until(network, lambda: len(got) == 50, timeout=60)
        assert len(got) == 50
        assert sender.pending_fragments() == 0


class TestEcho:
    def test_echo_roundtrip_and_rtt(self):
        network, systems = two_hosts()
        EchoServer(systems["b"])
        network.run(until=network.engine.now + 0.5)
        client = EchoClient(systems["a"])
        run_until(network, lambda: client.waiter.done(), timeout=10)
        assert client.ready
        client.ping(64)
        client.ping(64)
        run_until(network, lambda: client.replies == 2, timeout=10)
        assert len(client.rtts) == 2
        assert all(rtt > 0 for rtt in client.rtts)


class TestFileTransfer:
    def test_transfer_completes_and_counts_bytes(self):
        network, systems = two_hosts()
        sink = FileSink(systems["b"])
        network.run(until=network.engine.now + 0.5)
        sender = FileSender(systems["a"], total_bytes=50_000)
        run_until(network, lambda: sink.transfers_completed >= 1, timeout=60)
        assert sink.bytes_received == 50_000
        assert sender.finished_submitting


class TestRpc:
    def test_request_response_correlation(self):
        network, systems = two_hosts()
        server = RpcServer(systems["b"])
        server.register_method("add", lambda params: params["x"] + params["y"])
        network.run(until=network.engine.now + 0.5)
        client = RpcClient(systems["a"])
        run_until(network, lambda: client.ready, timeout=10)
        results = []
        client.call("add", {"x": 2, "y": 3},
                    lambda reply: results.append(reply["result"]))
        client.call("add", {"x": 10, "y": 20},
                    lambda reply: results.append(reply["result"]))
        run_until(network, lambda: len(results) == 2, timeout=10)
        assert results == [5, 30]
        assert server.requests_served == 2

    def test_unknown_method_errors(self):
        network, systems = two_hosts()
        server = RpcServer(systems["b"])
        network.run(until=network.engine.now + 0.5)
        client = RpcClient(systems["a"])
        run_until(network, lambda: client.ready, timeout=10)
        errors = []
        client.call("nope", {}, lambda reply: errors.append(reply.get("error")))
        run_until(network, lambda: errors, timeout=10)
        assert errors == ["no-such-method"]
        assert server.errors == 1


class TestMailRelay:
    def test_relay_forwards_to_mailbox(self):
        # a - relay host b - c : mail submitted at a, relayed at b, boxed at c
        network = Network(seed=4)
        for name in ("a", "b", "c"):
            network.add_node(name)
        network.connect("a", "b")
        network.connect("b", "c")
        systems = make_systems(network)
        add_shims(systems, network)
        dif = Dif("net", DifPolicies(keepalive_interval=5.0))
        orchestrator = Orchestrator(network)
        build_dif_over(orchestrator, dif, systems, adjacencies=[
            ("a", "b", shim_between(network, "a", "b")),
            ("b", "c", shim_between(network, "b", "c"))])
        orchestrator.run(timeout=30)
        mailbox = Mailbox(systems["c"], "mbox-c", users=["alice"])
        relay = MailRelay(systems["b"], "relay-b", routes={"alice": "mbox-c"})
        network.run(until=network.engine.now + 0.5)
        send_mail(systems["a"], "mua-a", "relay-b", "alice", "hi alice")
        run_until(network, lambda: mailbox.inbox("alice"), timeout=20)
        inbox = mailbox.inbox("alice")
        assert inbox[0]["body"] == "hi alice"
        assert relay.forwarded == 1

    def test_unroutable_mail_stays_queued(self):
        network, systems = two_hosts()
        relay = MailRelay(systems["b"], "relay", routes={})
        network.run(until=network.engine.now + 0.5)
        relay.submit({"to": "nobody", "body": "lost"})
        assert len(relay.queued) == 1
