"""The flat-byte boundary-frame transport.

A round's frames for one direction cross a worker pipe as one packed
buffer.  The contract: a lossless, bit-exact round trip for everything
the wire codec can produce (scalars + tagged tuples), loud rejection of
everything it cannot, and a self-delimiting layout a shared-memory ring
could adopt without re-framing.
"""

import math

import pytest

from repro.shard import (FrameFormatError, FrameTransport,
                         PackedFrameTransport, pack_frames, unpack_frames)
from repro.shard.framing import TRANSPORTS


def roundtrip(frames):
    return unpack_frames(pack_frames(frames))


class TestRoundTrip:
    def test_empty_batch(self):
        assert roundtrip([]) == []

    def test_scalar_payloads_and_identity_of_types(self):
        frames = [
            (0.001, "ab", None, 0),
            (0.002, "ab", True, 1),
            (0.003, "ab", False, 1),
            (0.004, "ab", 42, 8),
            (0.005, "ab", -1, 8),
            (0.006, "ab", 3.14159, 8),
            (0.007, "ab", "héllo 世界", 16),
            (0.008, "ab", b"\x00\xffraw", 5),
        ]
        out = roundtrip(frames)
        assert out == frames
        # bool/int discrimination survives (True is not 1 on the wire)
        assert [type(f[2]) for f in out] == [type(f[2]) for f in frames]

    def test_nested_tagged_tuples(self):
        payload = ("T", "pdu", ("T", "rib", 7, ("a", "b"), b"x"), None)
        frames = [(0.125, "border1--core", payload, 6250)]
        assert roundtrip(frames) == frames

    def test_float_bit_exactness(self):
        # the equivalence contract rides on these: timestamps and
        # payload floats must survive to the last bit
        values = [0.1 + 0.2, -0.0, 5e-324, 1.7976931348623157e308,
                  math.pi, 6250 * 8.0 / 1e8]
        frames = [(value, "ab", value, 0) for value in values]
        out = roundtrip(frames)
        for (arrival, _link, payload, _size), value in zip(out, values):
            assert math.copysign(1.0, arrival) == math.copysign(1.0, value)
            assert arrival == value and payload == value

    def test_arbitrary_precision_ints(self):
        big = 2 ** 200 + 17
        frames = [(0.0, "ab", (big, -big, 2 ** 63 - 1, -(2 ** 63)), 0)]
        assert roundtrip(frames) == frames

    def test_many_frames_keep_order(self):
        frames = [(0.001 * i, f"link{i % 3}", ("T", i), i)
                  for i in range(100)]
        assert roundtrip(frames) == frames


class TestRejection:
    def test_live_object_payload_fails_at_the_sender(self):
        with pytest.raises(FrameFormatError, match="live"):
            pack_frames([(0.0, "ab", ["a", "list"], 0)])
        with pytest.raises(FrameFormatError, match="live"):
            pack_frames([(0.0, "ab", {"a": 1}, 0)])

    def test_bad_magic(self):
        buf = bytearray(pack_frames([(0.0, "ab", None, 0)]))
        buf[0] ^= 0xFF
        with pytest.raises(FrameFormatError, match="magic"):
            unpack_frames(bytes(buf))

    def test_unsupported_version(self):
        buf = bytearray(pack_frames([(0.0, "ab", None, 0)]))
        buf[1] = 99
        with pytest.raises(FrameFormatError, match="version"):
            unpack_frames(bytes(buf))

    def test_trailing_bytes(self):
        buf = pack_frames([(0.0, "ab", None, 0)]) + b"junk"
        with pytest.raises(FrameFormatError, match="trailing"):
            unpack_frames(buf)

    def test_truncated_header(self):
        with pytest.raises(FrameFormatError, match="truncated"):
            unpack_frames(b"\xb7\x01")

    def test_unknown_value_tag(self):
        buf = bytearray(pack_frames([(0.0, "ab", None, 0)]))
        buf[-1] = ord("?")   # the payload tag is the last byte
        with pytest.raises(FrameFormatError, match="tag"):
            unpack_frames(bytes(buf))


class TestTransports:
    def test_registry_names(self):
        assert set(TRANSPORTS) == {"object", "packed"}
        assert isinstance(TRANSPORTS["packed"], PackedFrameTransport)

    def test_object_transport_is_identity(self):
        frames = [(0.5, "ab", ("T", 1), 3)]
        transport = FrameTransport()
        assert transport.loads(transport.dumps(frames)) == frames
        assert transport.dumps(frames) is frames

    def test_packed_transport_round_trips_through_bytes(self):
        frames = [(0.5, "ab", ("T", 1), 3)]
        transport = PackedFrameTransport()
        blob = transport.dumps(frames)
        assert isinstance(blob, bytes)
        assert transport.loads(blob) == frames
