"""The per-channel grant protocol: safety properties, quiet-cut
batching, and the coordinator cap/livelock bugfixes.

The two properties proved in :func:`repro.shard.plan.grant_horizons`'s
docstring are pinned here over randomized channel graphs:

1. **Dominance** — every per-channel grant is ≥ the old global-min
   horizon (``floor + min incoming delay``), so the new protocol never
   grants *less* than PR 5 did (safety is inherited, progress is not
   lost).
2. **No livelock** — some region with the globally earliest activity
   always holds a grant covering that activity, so every round steps at
   least one region that does real work.

The round-count regression pins the point of the whole change: on the
sparse-traffic 10×3 stateful plant the per-channel protocol does ≥ 3×
fewer boundary steps than global-min while staying bit-identical.
"""

import math
import random

import pytest

from repro.experiments.e6_scalability import (build_flood_spec,
                                              build_sparse_stateful_workload,
                                              build_stateful_workload,
                                              flood_assignment)
from repro.shard import (LinkSpec, NetworkSpec, RegionPlan, ShardCoordinator,
                         ShardRunError, all_nodes_announce, flood_workload,
                         grant_horizons, run_sharded, run_unsharded,
                         run_unsharded_stateful)


def random_channel_graph(rng, regions):
    """A random directed channel graph with positive delays; channels
    come in symmetric pairs (cut links are bidirectional) but with
    independent random delays the planner never produces — the
    properties must hold for the pure function regardless."""
    channels = {}
    for a in range(regions):
        for b in range(a + 1, regions):
            if rng.random() < 0.6:
                channels[(a, b)] = rng.choice([0.001, 0.002, 0.0007, 0.05])
                channels[(b, a)] = rng.choice([0.001, 0.002, 0.0007, 0.05])
    return channels


class TestGrantProperties:
    @pytest.mark.parametrize("seed", range(20))
    def test_every_grant_dominates_the_global_min_horizon(self, seed):
        rng = random.Random(seed)
        regions = rng.randint(2, 8)
        channels = random_channel_graph(rng, regions)
        ents = [rng.choice([0.0, 0.1, 1.5, 7.25, math.inf])
                for _ in range(regions)]
        grants = grant_horizons(ents, channels)
        floor = min(ents)
        for region in range(regions):
            incoming = [delay for (_src, dst), delay in channels.items()
                        if dst == region]
            if not incoming:
                assert math.isinf(grants[region])
                continue
            if math.isinf(floor):
                assert math.isinf(grants[region])
                continue
            old_horizon = floor + min(incoming)
            assert grants[region] >= old_horizon, (
                f"seed {seed} region {region}: per-channel grant "
                f"{grants[region]} below the global-min horizon "
                f"{old_horizon}")

    @pytest.mark.parametrize("seed", range(20))
    def test_some_earliest_region_is_always_granted_its_work(self, seed):
        # no livelock: the argmin-ent region's grant strictly exceeds
        # its ent (its own activity never blocks on itself, and every
        # incoming bound is ≥ floor + a positive delay)
        rng = random.Random(seed)
        regions = rng.randint(2, 8)
        channels = random_channel_graph(rng, regions)
        ents = [rng.choice([0.0, 0.1, 1.5, 7.25]) for _ in range(regions)]
        grants = grant_horizons(ents, channels)
        floor = min(ents)
        earliest = min(range(regions), key=lambda r: ents[r])
        assert grants[earliest] > floor

    def test_until_clamps_every_grant(self):
        channels = {(0, 1): 0.002, (1, 0): 0.002}
        grants = grant_horizons([0.0, 5.0], channels, until=1.0)
        assert all(g <= 1.0 for g in grants)

    def test_isolated_region_gets_an_infinite_grant(self):
        # no incoming channels: nothing can ever reach it, so it may
        # run to quiescence in one hop
        channels = {(0, 1): 0.002}     # 1 receives, 0 never does
        grants = grant_horizons([0.0, 0.0], channels)
        assert math.isinf(grants[0])
        assert grants[1] == 0.002

    def test_grants_on_a_real_plan_dominate_the_plan_lookahead(self):
        spec = build_flood_spec(4, 2)
        plan = RegionPlan(spec, flood_assignment(4, 2, 4))
        ents = [0.1, 0.2, 0.3, 0.4]
        grants = grant_horizons(ents, plan.channels)
        floor = min(ents)
        for index, region in enumerate(plan.regions):
            assert grants[index] >= floor + region.lookahead


class TestQuietCutBatching:
    def test_sparse_stateful_plant_needs_3x_fewer_boundary_steps(self):
        # the headline regression: sparse traffic (stretched enrollment
        # schedule, slow keepalives) leaves most regions idle most of
        # the time; global-min steps all 10 regions every round anyway,
        # per-channel steps only the work set — and both stay
        # bit-identical to the unsharded reference
        spec = build_flood_spec(10, 3)
        workload = build_sparse_stateful_workload(10, 3)
        until = workload["until"]
        plan = RegionPlan(spec, flood_assignment(10, 3, 10))
        reference = run_unsharded_stateful(spec, workload, seed=0,
                                           until=until)
        new = run_sharded(plan, workload, seed=0, mode="inline", until=until)
        old = run_sharded(plan, workload, seed=0, mode="inline",
                          protocol="global-min", until=until)
        assert new.rows == reference["rows"]
        assert new.node_stats == reference["node_stats"]
        assert old.rows == reference["rows"]
        # global-min stepped every region every round, by construction
        assert old.steps == old.rounds * len(plan.regions)
        assert old.steps >= 3 * new.steps, (
            f"quiet-cut batching regressed: global-min {old.steps} "
            f"boundary steps vs per-channel {new.steps}")
        assert new.rounds <= old.rounds

    def test_dense_stateful_plant_still_batches(self):
        # even the dense default schedule sheds ≥ 2× of the boundary
        # steps (the flood-coupled star keeps every round busy, but
        # never with all regions at once)
        spec = build_flood_spec(3, 2)
        workload = build_stateful_workload(3, 2)
        until = workload["until"]
        plan = RegionPlan(spec, flood_assignment(3, 2, 2))
        new = run_sharded(plan, workload, seed=0, mode="inline", until=until)
        old = run_sharded(plan, workload, seed=0, mode="inline",
                          protocol="global-min", until=until)
        assert new.rows == old.rows
        assert old.steps > new.steps

    def test_result_reports_protocol_and_per_region_steps(self):
        spec = build_flood_spec(2, 2)
        plan = RegionPlan(spec, flood_assignment(2, 2, 2))
        result = run_sharded(plan, all_nodes_announce(spec.nodes), seed=0,
                             mode="inline")
        assert result.protocol == "per-channel"
        assert len(result.region_steps) == len(plan.regions)
        assert result.steps == sum(result.region_steps)
        assert 0 < result.steps <= result.rounds * len(plan.regions)

    def test_unknown_protocol_rejected(self):
        spec = build_flood_spec(2, 2)
        plan = RegionPlan(spec, flood_assignment(2, 2, 2))
        with pytest.raises(ValueError, match="unknown protocol"):
            ShardCoordinator(plan, all_nodes_announce(spec.nodes),
                             protocol="optimistic")


class TestCapAdvance:
    """Satellite bugfix: the final cap-advance step used to discard any
    frames it received; it now proves it cannot receive any."""

    def plant(self):
        spec = NetworkSpec(
            nodes=("a", "b"),
            links=(LinkSpec(a="a", b="b", name="ab", delay=0.001),))
        plan = RegionPlan(spec, {"a": 0, "b": 1})
        return spec, plan

    def test_frame_emitted_exactly_at_until_is_relayed_not_dropped(self):
        # the announcement's wire departure — the boundary-frame
        # emission — lands on the cap to the last float digit: the
        # event executes in the main loop (floor == until is not past
        # the cap), the frame is relayed, and its delivery correctly
        # stays beyond the cap, exactly like the unsharded run
        spec, plan = self.plant()
        serialization = 6250 * 8.0 / 1e8
        until = 0.25 + serialization
        workload = flood_workload([("a", 0.25)], size_bytes=6250)
        result = run_sharded(plan, workload, seed=0, mode="inline",
                             until=until)
        reference = run_unsharded(spec, workload, seed=0, until=until)
        assert result.frames_relayed == 1
        assert all(s["clock"] == until for s in result.shards)
        assert result.rows == reference["rows"]   # nothing delivered yet
        # sanity: without the cap the frame lands at until + delay
        full = run_sharded(plan, workload, seed=0, mode="inline")
        assert [(row["node"], row["time"]) for row in full.rows] == \
            [("b", until + 0.001)]

    def test_cap_advance_refuses_stray_frames(self, monkeypatch):
        # force the invariant violation the assert exists for: with the
        # cap before the first event the only step is the cap-advance,
        # and a proxy that returns a frame there must be refused, not
        # silently dropped (the pre-fix behavior)
        from repro.shard import coordinator as coordinator_module
        spec, plan = self.plant()
        workload = flood_workload([("a", 0.25)])

        class StrayShard(coordinator_module._InlineShard):
            def recv_step(self):
                out, clock, nxt = super().recv_step()
                return out + [(9.9, "ab", None, 0)], clock, nxt

        monkeypatch.setattr(coordinator_module, "_InlineShard", StrayShard)
        with pytest.raises(ShardRunError, match="cap-advance"):
            run_sharded(plan, workload, seed=0, mode="inline", until=1e-4)

    def test_quiet_cap_advance_emits_nothing(self):
        # the honest version of the same run: cap before the first
        # event, main loop never executes, cap-advance alone moves
        # every clock to the cap without producing frames
        _spec, plan = self.plant()
        workload = flood_workload([("a", 0.25)])
        result = run_sharded(plan, workload, seed=0, mode="inline",
                             until=1e-4)
        assert result.rounds == 0
        assert result.frames_relayed == 0
        assert all(s["clock"] == 1e-4 for s in result.shards)


class TestLivelockDiagnostics:
    """Satellite bugfix: ``max_rounds`` exhaustion now reports
    per-region clocks, inbox depths, and next-event times."""

    def test_report_names_every_region_with_clock_inbox_and_next(self):
        spec = build_flood_spec(2, 2)
        plan = RegionPlan(spec, flood_assignment(2, 2, 2))
        coordinator = ShardCoordinator(plan, all_nodes_announce(spec.nodes),
                                       mode="inline", max_rounds=2)
        with pytest.raises(ShardRunError) as excinfo:
            coordinator.run()
        message = str(excinfo.value)
        assert "no convergence after 2 rounds" in message
        for index in range(len(plan.regions)):
            assert f"region {index}:" in message
        assert "clock=" in message
        assert "next_event=" in message
        assert "inbox=" in message

    def test_all_quiet_plant_cannot_exhaust_rounds(self):
        # quiet-cut batching makes a capped run over a silent stretch
        # cost zero rounds — max_rounds=1 must never trip on quiet time
        spec = build_flood_spec(2, 2)
        plan = RegionPlan(spec, flood_assignment(2, 2, 2))
        workload = flood_workload([("core", 50.0)])   # nothing before 50 s
        coordinator = ShardCoordinator(plan, workload, mode="inline",
                                       max_rounds=1)
        result = coordinator.run(until=49.0)
        assert result.rounds == 0
        assert all(s["clock"] == 49.0 for s in result.shards)


class TestAsyncGrants:
    """The barrier-free protocol: bit-identical results, deterministic
    inline counters, and no lost work when regions advance out of
    lockstep."""

    def test_flood_results_match_both_barrier_protocols(self):
        spec = build_flood_spec(3, 2)
        plan = RegionPlan(spec, flood_assignment(3, 2, 3))
        workload = all_nodes_announce(spec.nodes)
        reference = run_unsharded(spec, workload, seed=0)
        runs = {proto: run_sharded(plan, workload, seed=0, mode="inline",
                                   protocol=proto)
                for proto in ("per-channel", "global-min", "async-grants")}
        for proto, result in runs.items():
            assert result.rows == reference["rows"], proto
            assert result.node_stats == reference["node_stats"], proto
        assert runs["async-grants"].traces == runs["per-channel"].traces
        assert runs["async-grants"].traces == runs["global-min"].traces

    def test_stateful_results_match_unsharded(self):
        spec = build_flood_spec(3, 2)
        workload = build_stateful_workload(3, 2)
        until = workload["until"]
        plan = RegionPlan(spec, flood_assignment(3, 2, 2))
        reference = run_unsharded_stateful(spec, workload, seed=0,
                                           until=until)
        result = run_sharded(plan, workload, seed=0, mode="inline",
                             protocol="async-grants", until=until)
        assert result.rows == reference["rows"]
        assert result.node_stats == reference["node_stats"]

    def test_process_mode_matches_inline_results(self):
        # counts (grants, dispatch waves) are wall-clock-dependent in
        # process mode — completions arrive in OS order — so only the
        # *results* are compared, never the counters
        spec = build_flood_spec(2, 2)
        plan = RegionPlan(spec, flood_assignment(2, 2, 2))
        workload = all_nodes_announce(spec.nodes)
        inline = run_sharded(plan, workload, seed=0, mode="inline",
                             protocol="async-grants")
        process = run_sharded(plan, workload, seed=0, mode="process",
                              protocol="async-grants")
        assert process.rows == inline.rows
        assert process.traces == inline.traces
        assert [s["trace_sha256"] for s in process.shards] == \
            [s["trace_sha256"] for s in inline.shards]

    def test_inline_counters_are_deterministic(self):
        spec = build_flood_spec(3, 2)
        plan = RegionPlan(spec, flood_assignment(3, 2, 3))
        workload = all_nodes_announce(spec.nodes)
        first = run_sharded(plan, workload, seed=0, mode="inline",
                            protocol="async-grants")
        second = run_sharded(plan, workload, seed=0, mode="inline",
                             protocol="async-grants")
        assert first.grants == second.grants
        assert first.rounds == second.rounds
        assert first.relay_batches == second.relay_batches
        assert first.region_steps == second.region_steps
        assert first.grants >= first.rounds > 0

    def test_until_cap_parity_with_barrier_protocols(self):
        spec = build_flood_spec(2, 2)
        plan = RegionPlan(spec, flood_assignment(2, 2, 2))
        workload = all_nodes_announce(spec.nodes)
        capped = run_sharded(plan, workload, seed=0, mode="inline",
                             protocol="async-grants", until=0.0001)
        barrier = run_sharded(plan, workload, seed=0, mode="inline",
                              until=0.0001)
        assert all(s["clock"] == 0.0001 for s in capped.shards)
        assert capped.rows == barrier.rows
        assert capped.traces == barrier.traces

    def test_grant_and_batch_counters_reported(self):
        spec = build_flood_spec(2, 2)
        plan = RegionPlan(spec, flood_assignment(2, 2, 2))
        workload = all_nodes_announce(spec.nodes)
        barrier = run_sharded(plan, workload, seed=0, mode="inline")
        assert barrier.grants == barrier.rounds    # one fixpoint per round
        assert barrier.relay_batches > 0
        assert barrier.relay_bytes == 0            # inline: no channel
        asynchronous = run_sharded(plan, workload, seed=0, mode="inline",
                                   protocol="async-grants")
        # the async scheduler re-solves the fixpoint per completion, so
        # it computes at least as many grants as it runs dispatch waves
        assert asynchronous.grants >= asynchronous.rounds
