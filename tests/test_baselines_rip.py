"""Tests for the RIP-style distance-vector baseline IGP."""

import pytest

from repro.baselines import IpFabric
from repro.baselines.ipnet import IpPacket
from repro.baselines.rip import INFINITY_METRIC, RipDaemon, run_rip_network
from repro.sim.network import Network


def rip_chain(n=4, update_interval=0.5, seed=1):
    network = Network(seed=seed)
    names = network.build_chain(n)
    fabric = IpFabric(network, routers=names[1:-1])
    # discard the omniscient routes: RIP must build them itself
    for host in fabric.hosts.values():
        host.ip.clear_routes()
    daemons = run_rip_network(fabric, update_interval=update_interval)
    return network, fabric, daemons, names


class TestConvergence:
    def test_full_connectivity_after_convergence(self):
        network, fabric, daemons, names = rip_chain(4)
        network.run(until=8.0)
        first, last = fabric.host(names[0]), fabric.host(names[-1])
        got = []
        last.ip.register_protocol(200, lambda packet, stack: got.append(packet))
        first.ip.send(IpPacket(first.addr(), last.addr(), 200, "x", 4))
        network.run(until=9.0)
        assert len(got) == 1

    def test_metrics_reflect_hop_count(self):
        network, fabric, daemons, names = rip_chain(4)
        network.run(until=8.0)
        first = daemons[names[0]]
        last_host = fabric.host(names[-1])
        route = first.route_to(last_host.addr())
        assert route is not None
        assert route.metric == 2   # two routers between the end subnets

    def test_update_messages_flow_periodically(self):
        network, _fabric, daemons, names = rip_chain(3, update_interval=0.5)
        network.run(until=5.0)
        for daemon in daemons.values():
            assert daemon.updates_sent >= 5
            assert daemon.updates_received >= 5

    def test_connected_routes_survive_without_neighbors(self):
        network = Network(seed=1)
        network.add_node("solo")
        network.add_node("peer")
        network.connect("solo", "peer")
        fabric = IpFabric(network)
        fabric.host("solo").ip.clear_routes()
        daemon = RipDaemon(fabric.host("solo").ip, fabric.host("solo").udp,
                           update_interval=0.5)
        network.run(until=3.0)
        assert daemon.table_size() >= 1


class TestFailureHandling:
    def test_route_expires_after_silence(self):
        network, fabric, daemons, names = rip_chain(4, update_interval=0.5)
        network.run(until=8.0)
        first = daemons[names[0]]
        last_host = fabric.host(names[-1])
        assert first.route_to(last_host.addr()) is not None
        # cut the chain in the middle
        network.link_between(names[1], names[2]).fail()
        network.run(until=20.0)
        route = first.route_to(last_host.addr())
        assert route is None or route.metric >= INFINITY_METRIC

    def test_reconvergence_after_repair(self):
        network, fabric, daemons, names = rip_chain(4, update_interval=0.5)
        network.run(until=8.0)
        link = network.link_between(names[1], names[2])
        link.fail()
        network.run(until=20.0)
        link.repair()
        network.run(until=35.0)
        first, last = fabric.host(names[0]), fabric.host(names[-1])
        got = []
        last.ip.register_protocol(200, lambda packet, stack: got.append(packet))
        first.ip.send(IpPacket(first.addr(), last.addr(), 200, "back", 4))
        network.run(until=36.0)
        assert len(got) == 1

    def test_update_cost_grows_with_network_size(self):
        """The E6 contrast from the baseline side: a flat IGP's periodic
        update traffic scales with the whole network."""
        costs = {}
        for n in (3, 6):
            network, _fabric, daemons, _names = rip_chain(
                n, update_interval=0.5)
            network.run(until=6.0)
            costs[n] = sum(d.updates_sent for d in daemons.values())
        assert costs[6] > costs[3] * 1.5
