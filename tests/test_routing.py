"""Unit tests for link-state routing inside a DIF."""

import random

import pytest

from repro.core.names import Address
from repro.core.riep import M_WRITE, RiepMessage
from repro.core.routing import LSA_OBJ, LinkStateRouting, Lsa
from repro.sim.engine import Engine


class FloodBus:
    """Connects several routing tasks the way adjacent IPCPs would be."""

    def __init__(self, engine):
        self.engine = engine
        self.tasks = {}       # Address -> LinkStateRouting
        self.edges = set()    # frozenset({a, b})
        self.messages = 0

    def add(self, address, task):
        self.tasks[address] = task

    def link(self, a, b):
        self.edges.add(frozenset((a, b)))

    def unlink(self, a, b):
        self.edges.discard(frozenset((a, b)))

    def flood_fn(self, origin):
        def flood(message, exclude):
            count = 0
            for edge in list(self.edges):
                if origin not in edge:
                    continue
                peer = next(iter(edge - {origin}))
                if exclude is not None and peer == exclude:
                    continue
                self.messages += 1
                count += 1
                value = message.value
                self.engine.call_later(
                    0.001, lambda p=peer, v=value, o=origin:
                    self.tasks[p].handle_lsa(
                        RiepMessage(M_WRITE, obj=LSA_OBJ, value=v), o))
            return count
        return flood


def build_topology(edges, spf_delay=0.005):
    """edges: list of (int, int) pairs; returns (engine, {addr: task})."""
    engine = Engine()
    bus = FloodBus(engine)
    addresses = sorted({a for e in edges for a in e})
    tasks = {}
    for value in addresses:
        address = Address(value)
        task = LinkStateRouting(engine, lambda a=address: a,
                                bus.flood_fn(address), spf_delay=spf_delay)
        tasks[value] = task
        bus.add(address, task)
    for a, b in edges:
        bus.link(Address(a), Address(b))
        tasks[a].neighbor_up(Address(b))
        tasks[b].neighbor_up(Address(a))
    engine.run(until=5.0)
    return engine, bus, tasks


class TestLsaEncoding:
    def test_roundtrip(self):
        lsa = Lsa(Address(1), 3, {Address(2): 1.0, Address(3): 2.5})
        decoded = Lsa.from_value(lsa.to_value())
        assert decoded.origin == lsa.origin
        assert decoded.seq == 3
        assert decoded.neighbors == lsa.neighbors


class TestConvergence:
    def test_line_topology_next_hops(self):
        _e, _bus, tasks = build_topology([(1, 2), (2, 3), (3, 4)])
        assert tasks[1].next_hop(Address(4)) == Address(2)
        assert tasks[1].next_hop(Address(2)) == Address(2)
        assert tasks[4].next_hop(Address(1)) == Address(3)

    def test_all_pairs_reachable(self):
        _e, _bus, tasks = build_topology([(1, 2), (2, 3), (3, 4), (4, 1)])
        for source, task in tasks.items():
            others = {Address(v) for v in tasks if v != source}
            assert task.reachable() == others

    def test_shortest_path_chosen_over_longer(self):
        # square with diagonal: 1-2, 2-3, 3-4, 4-1, 1-3
        _e, _bus, tasks = build_topology([(1, 2), (2, 3), (3, 4), (4, 1),
                                          (1, 3)])
        assert tasks[1].next_hop(Address(3)) == Address(3)

    def test_costs_respected(self):
        engine = Engine()
        bus = FloodBus(engine)
        tasks = {}
        for value in (1, 2, 3):
            address = Address(value)
            task = LinkStateRouting(engine, lambda a=address: a,
                                    bus.flood_fn(address), spf_delay=0.005)
            tasks[value] = task
            bus.add(address, task)
        # 1-3 direct cost 10; 1-2-3 cost 2
        for a, b, cost in ((1, 3, 10.0), (1, 2, 1.0), (2, 3, 1.0)):
            bus.link(Address(a), Address(b))
            tasks[a].neighbor_up(Address(b), cost)
            tasks[b].neighbor_up(Address(a), cost)
        engine.run(until=5.0)
        assert tasks[1].next_hop(Address(3)) == Address(2)

    def test_table_size_metric(self):
        _e, _bus, tasks = build_topology([(1, 2), (2, 3)])
        assert tasks[2].table_size() == 2

    def test_failure_reroutes(self):
        engine, bus, tasks = build_topology([(1, 2), (2, 3), (3, 4), (4, 1)])
        assert tasks[1].next_hop(Address(2)) == Address(2)
        bus.unlink(Address(1), Address(2))
        tasks[1].neighbor_down(Address(2))
        tasks[2].neighbor_down(Address(1))
        engine.run(until=10.0)
        assert tasks[1].next_hop(Address(2)) == Address(4)

    def test_partition_empties_reachability(self):
        engine, bus, tasks = build_topology([(1, 2)])
        bus.unlink(Address(1), Address(2))
        tasks[1].neighbor_down(Address(2))
        tasks[2].neighbor_down(Address(1))
        engine.run(until=10.0)
        assert tasks[1].reachable() == set()


class TestFloodingDiscipline:
    def test_stale_lsa_not_refloded(self):
        engine, bus, tasks = build_topology([(1, 2), (2, 3)])
        before = bus.messages
        stale = Lsa(Address(1), 1, {Address(2): 1.0})
        tasks[3].handle_lsa(RiepMessage(M_WRITE, obj=LSA_OBJ,
                                        value=stale.to_value()), Address(2))
        engine.run(until=6.0)
        assert bus.messages == before

    def test_newer_lsa_refloded(self):
        engine, bus, tasks = build_topology([(1, 2), (2, 3)])
        before = bus.messages
        fresh = Lsa(Address(1), 99, {Address(2): 1.0})
        tasks[2].handle_lsa(RiepMessage(M_WRITE, obj=LSA_OBJ,
                                        value=fresh.to_value()), Address(1))
        engine.run(until=6.0)
        assert bus.messages > before

    def test_two_way_check_requires_both_claims(self):
        engine = Engine()
        task = LinkStateRouting(engine, lambda: Address(1),
                                lambda m, e: 0, spf_delay=0.001)
        task.neighbor_up(Address(2))
        # Address(2) never claims 1 back: no usable edge
        one_way = Lsa(Address(2), 1, {Address(3): 1.0})
        task.handle_lsa(RiepMessage(M_WRITE, obj=LSA_OBJ,
                                    value=one_way.to_value()), Address(2))
        engine.run(until=1.0)
        assert task.next_hop(Address(2)) is None
        # now 2 claims 1: edge usable
        two_way = Lsa(Address(2), 2, {Address(1): 1.0})
        task.handle_lsa(RiepMessage(M_WRITE, obj=LSA_OBJ,
                                    value=two_way.to_value()), Address(2))
        engine.run(until=2.0)
        assert task.next_hop(Address(2)) == Address(2)


class TestSync:
    def test_snapshot_load_between_tasks(self):
        _e, _bus, tasks = build_topology([(1, 2), (2, 3)])
        engine = Engine()
        newcomer = LinkStateRouting(engine, lambda: Address(9),
                                    lambda m, e: 0, spf_delay=0.001)
        newcomer.load_lsdb(tasks[2].sync_lsdb())
        assert newcomer.lsdb_size() == tasks[2].lsdb_size()

    def test_load_keeps_newer_local_copies(self):
        engine = Engine()
        task = LinkStateRouting(engine, lambda: Address(9),
                                lambda m, e: 0, spf_delay=0.001)
        newer = Lsa(Address(1), 5, {Address(2): 1.0})
        task.handle_lsa(RiepMessage(M_WRITE, obj=LSA_OBJ,
                                    value=newer.to_value()), Address(1))
        task.load_lsdb([Lsa(Address(1), 2, {}).to_value()])
        # the seq-5 copy must survive
        snapshot = task.sync_lsdb()
        entry = [v for v in snapshot if tuple(v["origin"]) == (1,)][0]
        assert entry["seq"] == 5

    def test_refresh_bumps_sequence(self):
        engine = Engine()
        floods = []
        task = LinkStateRouting(engine, lambda: Address(1),
                                lambda m, e: floods.append(m) or 1,
                                spf_delay=0.001)
        task.neighbor_up(Address(2))
        task.refresh()
        seqs = [m.value["seq"] for m in floods]
        assert seqs == [1, 2]


class TestSpfScheduling:
    def test_spf_batches_floods(self):
        # three adjacency changes inside one hold-down window cost one
        # Dijkstra, billed to the first table query after the timer fires
        engine = Engine()
        task = LinkStateRouting(engine, lambda: Address(1),
                                lambda m, e: 0, spf_delay=0.1)
        task.neighbor_up(Address(2))
        task.neighbor_up(Address(3))
        task.neighbor_up(Address(4))
        engine.run(until=1.0)
        task.table()
        assert task.spf_runs == 1
        task.table()
        task.next_hop(Address(2))
        assert task.spf_runs == 1     # further queries stay free

    def test_force_spf_runs_immediately(self):
        engine = Engine()
        task = LinkStateRouting(engine, lambda: Address(1),
                                lambda m, e: 0, spf_delay=10.0)
        task.neighbor_up(Address(2))
        task.force_spf()
        assert task.spf_runs == 1

    def test_unenrolled_task_does_not_originate(self):
        engine = Engine()
        floods = []
        task = LinkStateRouting(engine, lambda: None,
                                lambda m, e: floods.append(m) or 1)
        task.neighbor_up(Address(2))
        assert floods == []


class TestCounterRename:
    def test_deprecated_refloded_alias_removed(self):
        engine, _bus, tasks = build_topology([(1, 2), (2, 3)])
        task = tasks[2]
        assert task.lsas_reflooded > 0
        # the deprecated misspelling is gone for good
        assert not hasattr(task, "lsas_refloded")


class TestIncrementalSpf:
    def test_seq_only_refresh_skips_dijkstra(self):
        engine, _bus, tasks = build_topology([(1, 2), (2, 3)])
        task = tasks[3]
        table_before = task.table()
        runs_before = task.spf_runs
        # a pure sequence refresh: same neighbors, bumped seq
        refreshed = Lsa(Address(1), 99, {Address(2): 1.0})
        task.handle_lsa(RiepMessage(M_WRITE, obj=LSA_OBJ,
                                    value=refreshed.to_value()), Address(2))
        engine.run(until=engine.now + 5.0)
        assert task.table() == table_before
        assert task.spf_runs == runs_before          # Dijkstra elided
        assert task.spf_skipped >= 1

    def test_edge_change_still_recomputes(self):
        engine, bus, tasks = build_topology([(1, 2), (2, 3), (3, 4), (4, 1)])
        task = tasks[1]
        assert task.next_hop(Address(2)) == Address(2)
        runs_before = task.spf_runs
        bus.unlink(Address(1), Address(2))
        tasks[1].neighbor_down(Address(2))
        tasks[2].neighbor_down(Address(1))
        engine.run(until=engine.now + 10.0)
        assert task.next_hop(Address(2)) == Address(4)
        assert task.spf_runs > runs_before

    def test_spf_is_lazy_until_queried(self):
        engine = Engine()
        task = LinkStateRouting(engine, lambda: Address(1),
                                lambda m, e: 0, spf_delay=0.01)
        task.neighbor_up(Address(2))
        claim = Lsa(Address(2), 1, {Address(1): 1.0})
        task.handle_lsa(RiepMessage(M_WRITE, obj=LSA_OBJ,
                                    value=claim.to_value()), Address(2))
        engine.run(until=1.0)
        assert task.spf_runs == 0                    # nobody asked yet
        assert task.next_hop(Address(2)) == Address(2)
        assert task.spf_runs == 1                    # billed to the query

    @pytest.mark.parametrize("seed", range(8))
    def test_property_partial_spf_matches_full_recompute(self, seed):
        """The dirty-region skip must be exact: a task with partial_spf
        and one without, fed the identical LSA stream, always agree."""
        rng = random.Random(seed)
        nodes = list(range(2, 9))
        engine = Engine()
        fast = LinkStateRouting(engine, lambda: Address(1),
                                lambda m, e: 0, spf_delay=0.001,
                                partial_spf=True)
        slow = LinkStateRouting(engine, lambda: Address(1),
                                lambda m, e: 0, spf_delay=0.001,
                                partial_spf=False)
        for task in (fast, slow):
            task.neighbor_up(Address(2))
            task.neighbor_up(Address(3))
        seqs = {n: 0 for n in nodes}
        neighbor_sets = {n: {} for n in nodes}
        for step in range(40):
            origin = rng.choice(nodes)
            peers = [n for n in [1] + nodes if n != origin]
            count = rng.randint(0, min(3, len(peers)))
            neighbor_sets[origin] = {
                Address(p): float(rng.choice([1, 1, 2, 5]))
                for p in rng.sample(peers, count)}
            seqs[origin] += 1
            lsa = Lsa(Address(origin), seqs[origin], neighbor_sets[origin])
            for task in (fast, slow):
                task.handle_lsa(
                    RiepMessage(M_WRITE, obj=LSA_OBJ, value=lsa.to_value()),
                    Address(origin))
            engine.run(until=engine.now + 0.01)
            assert fast.table() == slow.table(), f"diverged at step {step}"
        assert fast.spf_runs <= slow.spf_runs
