"""Unit tests for the RIB object tree and the RIEP protocol helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.core.rib import Rib, RibError, join_path, split_path
from repro.core.riep import (M_CONNECT, M_CONNECT_R, M_READ, M_WRITE,
                             RESULT_DENIED, RESULT_OK, InvokeTable,
                             RiepMessage, response_opcode)
from repro.sim.engine import Engine


class TestPaths:
    def test_split_normalizes(self):
        assert split_path("/a/b/c") == ("a", "b", "c")
        assert split_path("a/b") == ("a", "b")
        assert split_path("/a//b/") == ("a", "b")

    def test_empty_path_rejected(self):
        with pytest.raises(RibError):
            split_path("/")

    @given(st.lists(st.text(alphabet=st.characters(
        blacklist_characters="/", blacklist_categories=("Cs",)), min_size=1),
        min_size=1, max_size=6))
    def test_property_join_split_roundtrip(self, parts):
        assert split_path(join_path(tuple(parts))) == tuple(parts)


class TestRibOperations:
    def test_create_then_read(self):
        rib = Rib()
        rib.create("/a/b", 42)
        assert rib.read("/a/b") == 42

    def test_create_duplicate_rejected(self):
        rib = Rib()
        rib.create("/a", 1)
        with pytest.raises(RibError):
            rib.create("/a", 2)

    def test_write_upserts(self):
        rib = Rib()
        rib.write("/a", 1)
        rib.write("/a", 2)
        assert rib.read("/a") == 2

    def test_read_missing_raises(self):
        with pytest.raises(RibError):
            Rib().read("/nope")

    def test_read_or_default(self):
        assert Rib().read_or("/nope", "dflt") == "dflt"

    def test_delete_returns_value(self):
        rib = Rib()
        rib.write("/a", 9)
        assert rib.delete("/a") == 9
        assert not rib.exists("/a")

    def test_delete_missing_raises(self):
        with pytest.raises(RibError):
            Rib().delete("/nope")

    def test_delete_if_exists_is_silent(self):
        Rib().delete_if_exists("/nope")

    def test_list_returns_descendants_sorted(self):
        rib = Rib()
        rib.write("/dir/names/b", 1)
        rib.write("/dir/names/a", 2)
        rib.write("/dir/other", 3)
        rib.write("/elsewhere", 4)
        assert rib.list("/dir") == ["/dir/names/a", "/dir/names/b",
                                    "/dir/other"]

    def test_children_immediate_only(self):
        rib = Rib()
        rib.write("/d/x/deep", 1)
        rib.write("/d/y", 2)
        assert rib.children("/d") == ["x", "y"]

    def test_items_pairs(self):
        rib = Rib()
        rib.write("/d/a", 1)
        assert list(rib.items("/d")) == [("/d/a", 1)]

    def test_size(self):
        rib = Rib()
        rib.write("/a", 1)
        rib.write("/b", 2)
        assert rib.size() == 2


class TestRibSubscriptions:
    def test_subscriber_sees_ops_under_prefix(self):
        rib = Rib()
        seen = []
        rib.subscribe("/dir", lambda op, path, value: seen.append((op, path)))
        rib.create("/dir/a", 1)
        rib.write("/dir/a", 2)
        rib.delete("/dir/a")
        rib.write("/other", 3)
        assert seen == [("create", "/dir/a"), ("write", "/dir/a"),
                        ("delete", "/dir/a")]

    def test_unsubscribe_stops_notifications(self):
        rib = Rib()
        seen = []
        unsubscribe = rib.subscribe("/d", lambda *a: seen.append(a))
        unsubscribe()
        rib.write("/d/x", 1)
        assert seen == []


class TestRiepMessages:
    def test_response_opcode_pairs(self):
        assert response_opcode(M_CONNECT) == M_CONNECT_R
        assert response_opcode(M_WRITE) == "M_WRITE_R"

    def test_response_opcode_rejects_responses(self):
        with pytest.raises(ValueError):
            response_opcode(M_CONNECT_R)

    def test_reply_echoes_identity(self):
        request = RiepMessage(M_READ, obj="/x", invoke_id=9)
        reply = request.reply(value=1, result=RESULT_DENIED)
        assert reply.opcode == "M_READ_R"
        assert reply.obj == "/x"
        assert reply.invoke_id == 9
        assert not reply.ok

    def test_ok_flag(self):
        assert RiepMessage(M_READ, result=RESULT_OK).ok

    def test_estimate_size_grows_with_value(self):
        small = RiepMessage(M_WRITE, obj="/x", value=1)
        big = RiepMessage(M_WRITE, obj="/x", value=["y" * 100] * 5)
        assert big.estimate_size() > small.estimate_size() + 400

    def test_estimate_size_handles_all_value_shapes(self):
        for value in (None, True, 3, 2.5, "s", b"b", [1, 2], (1,), {1, 2},
                      {"k": "v"}, object()):
            assert RiepMessage(M_WRITE, value=value).estimate_size() > 0


class TestInvokeTable:
    def test_response_dispatched_to_handler(self):
        engine = Engine()
        table = InvokeTable(engine)
        seen = []
        message = table.new_request(RiepMessage(M_READ, obj="/x"), seen.append)
        assert message.invoke_id > 0
        reply = message.reply(value=5)
        assert table.dispatch_response(reply)
        assert seen[0].value == 5

    def test_stale_response_rejected(self):
        engine = Engine()
        table = InvokeTable(engine)
        assert not table.dispatch_response(RiepMessage("M_READ_R", invoke_id=99))

    def test_timeout_delivers_none(self):
        engine = Engine()
        table = InvokeTable(engine, default_timeout=1.0)
        seen = []
        table.new_request(RiepMessage(M_READ), seen.append)
        engine.run(until=2.0)
        assert seen == [None]
        assert table.pending_count() == 0

    def test_response_cancels_timeout(self):
        engine = Engine()
        table = InvokeTable(engine, default_timeout=1.0)
        seen = []
        message = table.new_request(RiepMessage(M_READ), seen.append)
        table.dispatch_response(message.reply())
        engine.run(until=2.0)
        assert len(seen) == 1 and seen[0] is not None

    def test_custom_timeout(self):
        engine = Engine()
        table = InvokeTable(engine, default_timeout=10.0)
        seen = []
        table.new_request(RiepMessage(M_READ), seen.append, timeout=0.5)
        engine.run(until=1.0)
        assert seen == [None]

    def test_invoke_ids_unique(self):
        engine = Engine()
        table = InvokeTable(engine)
        ids = {table.new_request(RiepMessage(M_READ), lambda r: None).invoke_id
               for _ in range(10)}
        assert len(ids) == 10
