"""Tests for the ``python -m repro`` entry point."""

import pytest

from repro.__main__ import (EXPERIMENTS, _extract_worker_count, main,
                            scenarios_main)
from repro.sweeps import JOBS_ENV


class TestCli:
    def test_no_args_lists_experiments(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        for key in EXPERIMENTS:
            assert key in out

    def test_unknown_experiment_rejected(self, capsys):
        assert main(["zz"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_registry_covers_all_paper_experiments(self):
        assert set(EXPERIMENTS) == {"e1", "e2", "e3", "e4", "e5", "e6",
                                    "e6-scale", "e7", "e8", "e9", "a1", "a2"}

    def test_single_experiment_prints_table(self, capsys, monkeypatch):
        from repro.sweeps import Job
        stub_jobs = [Job("repro.sweeps.job:echo_row",
                         kwargs={"routers": 1, "ok": True}, group="e2")]
        monkeypatch.setitem(EXPERIMENTS, "e2", ("stub", lambda: stub_jobs))
        assert main(["e2"]) == 0
        out = capsys.readouterr().out
        assert "routers" in out and "stub" in out

    def test_experiment_registry_entries_build_job_lists(self):
        for key, (_title, jobs_fn) in EXPERIMENTS.items():
            if key == "e6-scale":
                continue    # builds large tiers by default; covered below
            jobs = list(jobs_fn())
            assert jobs, key
            assert all(job.group == key for job in jobs), key

    def test_e6_scale_registry_honours_tier_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_E6_SCALE_TIERS", "small")
        _title, jobs_fn = EXPERIMENTS["e6-scale"]
        labels = [job.label for job in jobs_fn()]
        assert labels == ["e6-scale flat small", "e6-scale recursive small"]


class TestShardedScaleFlags:
    """``--shards`` / ``--stateful`` / ``--balance`` wiring."""

    def test_stateful_and_balance_require_shards(self, capsys):
        assert main(["e6-scale", "--stateful"]) == 2
        assert "--stateful/--balance" in capsys.readouterr().err
        assert main(["e2", "--balance"]) == 2
        assert "--stateful/--balance" in capsys.readouterr().err

    def test_shards_applies_to_e6_scale_only(self, capsys):
        assert main(["e2", "--shards", "2"]) == 2
        assert "e6-scale" in capsys.readouterr().err

    def test_stateful_with_one_shard_is_a_contradiction(self, capsys):
        # --shards 1 is the unsharded reference row: there is no
        # partition to shard the control plane over, so accepting the
        # combination would silently run something else than asked
        assert main(["e6-scale", "--shards", "1", "--stateful"]) == 2
        err = capsys.readouterr().err
        assert "--stateful" in err and "--shards 1" in err

    def test_balance_with_one_shard_is_a_contradiction(self, capsys):
        assert main(["e6-scale", "--shards", "1", "--balance"]) == 2
        err = capsys.readouterr().err
        assert "--balance" in err and "--shards 1" in err

    def test_both_flags_with_one_shard_name_both(self, capsys):
        assert main(["e6-scale", "--shards", "1", "--stateful",
                     "--balance"]) == 2
        err = capsys.readouterr().err
        assert "--stateful/--balance" in err

    def test_stateful_tier_runs_and_pins_fingerprint(self, capsys,
                                                     monkeypatch):
        monkeypatch.setenv("REPRO_E6_STATEFUL_TIERS", "small")
        assert main(["e6-scale", "--shards", "2", "--stateful"]) == 0
        out = capsys.readouterr().out
        assert "flat-stateful" in out and "rib_sha256" in out
        assert "stateful" in out   # the table title names the tier

    def test_stateful_tier_rejects_unknown_tier_env(self, capsys,
                                                    monkeypatch):
        monkeypatch.setenv("REPRO_E6_STATEFUL_TIERS", "galactic")
        assert main(["e6-scale", "--shards", "2", "--stateful"]) == 2
        assert "REPRO_E6_STATEFUL_TIERS" in capsys.readouterr().err

    def test_stateful_jobs_honour_balance(self):
        from repro.experiments.e6_scalability import (iter_flood_jobs,
                                                      iter_stateful_jobs)
        for jobs in (iter_stateful_jobs(["small"], shards=2, balance=True),
                     iter_flood_jobs(["small"], shards=2, balance=True)):
            assert jobs and all(job.kwargs["balance"] for job in jobs)

    def test_choice_mirrors_match_shard_package(self):
        # the CLI avoids importing repro.shard at startup by mirroring
        # its protocol/transport tuples; the mirror must never drift
        from repro.__main__ import PROTOCOL_CHOICES, TRANSPORT_CHOICES
        from repro.shard import PROTOCOLS, TRANSPORT_NAMES
        assert PROTOCOL_CHOICES == PROTOCOLS
        assert TRANSPORT_CHOICES == TRANSPORT_NAMES

    def test_protocol_and_transport_require_stateful(self, capsys):
        assert main(["e6-scale", "--shards", "2",
                     "--protocol", "async-grants"]) == 2
        assert "--protocol/--transport" in capsys.readouterr().err
        assert main(["e2", "--transport", "ring"]) == 2
        assert "--protocol/--transport" in capsys.readouterr().err

    def test_unknown_protocol_rejected_with_choices(self, capsys):
        assert main(["e6-scale", "--shards", "2", "--stateful",
                     "--protocol", "psychic"]) == 2
        err = capsys.readouterr().err
        assert "psychic" in err and "async-grants" in err

    def test_stateful_tier_runs_async_grants_over_ring(self, capsys,
                                                       monkeypatch):
        monkeypatch.setenv("REPRO_E6_STATEFUL_TIERS", "small")
        assert main(["e6-scale", "--shards", "2", "--stateful",
                     "--protocol", "async-grants",
                     "--transport", "ring"]) == 0
        out = capsys.readouterr().out
        assert "async-grants" in out and "rib_sha256" in out

    def test_stateful_jobs_carry_protocol_and_transport(self):
        from repro.experiments.e6_scalability import iter_stateful_jobs
        jobs = iter_stateful_jobs(["small"], shards=2,
                                  protocol="async-grants", transport="ring")
        assert jobs
        for job in jobs:
            assert job.kwargs["protocol"] == "async-grants"
            assert job.kwargs["transport"] == "ring"


class TestJobsFlag:
    """``--jobs`` parsing and the ``REPRO_JOBS`` fallback."""

    @pytest.mark.parametrize("value", ["0", "-1", "two", "1.5", ""])
    def test_rejects_non_positive_and_non_integers(self, capsys, value):
        assert main(["e2", "--jobs", value]) == 2
        assert "worker count" in capsys.readouterr().err

    def test_rejects_missing_value(self, capsys):
        assert main(["e2", "--jobs"]) == 2
        assert "--jobs requires a value" in capsys.readouterr().err

    def test_equals_form_is_accepted(self):
        args, workers, error = _extract_worker_count(["e2", "--jobs=3"])
        assert (args, workers, error) == (["e2"], 3, None)

    def test_flag_position_is_free(self):
        args, workers, error = _extract_worker_count(["--jobs", "2", "e1",
                                                      "e2"])
        assert (args, workers, error) == (["e1", "e2"], 2, None)

    def test_flag_runs_experiment_through_pool(self, capsys, monkeypatch):
        from repro.sweeps import Job
        stub_jobs = [Job("repro.sweeps.job:worker_info_row",
                         kwargs={"index": i}, group="e2") for i in range(3)]
        monkeypatch.setitem(EXPERIMENTS, "e2", ("stub", lambda: stub_jobs))
        assert main(["e2", "--jobs", "2"]) == 0
        assert "index" in capsys.readouterr().out

    def test_env_override_is_used_when_flag_absent(self, monkeypatch):
        seen = {}

        class Recorder:
            def __init__(self, workers=None, **_kwargs):
                seen["workers"] = workers
            def imap(self, jobs):
                return iter([[] for _job in jobs])
            def map(self, jobs):
                return [[] for _job in jobs]
            def run(self, jobs):
                return []

        monkeypatch.setattr("repro.__main__.SweepRunner", Recorder)
        monkeypatch.setitem(EXPERIMENTS, "e2", ("stub", lambda: []))
        monkeypatch.setenv(JOBS_ENV, "3")
        assert main(["e2"]) == 0
        assert seen["workers"] == 3
        # the explicit flag beats the environment
        assert main(["e2", "--jobs", "2"]) == 0
        assert seen["workers"] == 2

    @pytest.mark.parametrize("value", ["0", "-2", "many"])
    def test_invalid_env_value_is_an_error(self, capsys, monkeypatch, value):
        monkeypatch.setitem(EXPERIMENTS, "e2", ("stub", lambda: []))
        monkeypatch.setenv(JOBS_ENV, value)
        assert main(["e2"]) == 2
        assert "REPRO_JOBS" in capsys.readouterr().err

    def test_invalid_start_method_env_is_an_error(self, capsys, monkeypatch):
        monkeypatch.setitem(EXPERIMENTS, "e2", ("stub", lambda: []))
        monkeypatch.setenv("REPRO_START_METHOD", "Spawn")
        assert main(["e2"]) == 2
        assert "REPRO_START_METHOD" in capsys.readouterr().err

    def test_invalid_env_does_not_break_poolless_commands(self, capsys,
                                                          monkeypatch):
        # help and `scenarios list` never dispatch jobs, so a bad
        # REPRO_JOBS must not turn them into errors
        monkeypatch.setenv(JOBS_ENV, "bogus")
        assert main([]) == 0
        assert "usage" in capsys.readouterr().out
        assert main(["scenarios", "list"]) == 0
        assert "canned scenarios" in capsys.readouterr().out

    def test_scenarios_run_accepts_jobs_flag(self, capsys):
        assert main(["scenarios", "run", "--jobs", "2", "--seed", "5",
                     "--stack", "rina", "gen:2"]) == 0
        out = capsys.readouterr().out
        assert "jobs=2" in out and "byte-identical" in out

    def test_scenarios_jobs_validation_matches_experiments(self, capsys):
        assert main(["scenarios", "run", "--jobs", "-1", "fault-storm"]) == 2
        assert "worker count" in capsys.readouterr().err
