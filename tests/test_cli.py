"""Tests for the ``python -m repro`` entry point."""

import pytest

from repro.__main__ import EXPERIMENTS, main


class TestCli:
    def test_no_args_lists_experiments(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        for key in EXPERIMENTS:
            assert key in out

    def test_unknown_experiment_rejected(self, capsys):
        assert main(["zz"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_registry_covers_all_paper_experiments(self):
        assert set(EXPERIMENTS) == {"e1", "e2", "e3", "e4", "e5", "e6",
                                    "e6-scale", "e7", "e8", "e9", "a1", "a2"}

    def test_single_experiment_prints_table(self, capsys, monkeypatch):
        monkeypatch.setitem(EXPERIMENTS, "e2",
                            ("stub", lambda: [{"routers": 1, "ok": True}]))
        assert main(["e2"]) == 0
        out = capsys.readouterr().out
        assert "routers" in out and "stub" in out
