"""Golden scenario-trace fingerprints.

The hot-path work (deque FIFOs everywhere, incremental SPF, memoized
two-way graphs, size caches, engine heap tuples) is required to be
**byte-invisible**: a canned spec must produce exactly the trace it
produced before the overhaul.  These SHA-256 fingerprints were captured
from the pre-overhaul tree (PR 1 tip, seed 0, rina stack); any
optimization that changes scheduling order, event counts, drop decisions,
or float arithmetic anywhere in the stack shows up here as a mismatch.

When a *deliberate* behavior change lands (new protocol feature, changed
policy default), re-capture with::

    PYTHONPATH=src python -c "
    import hashlib
    from repro.scenarios import CANNED, ScenarioRunner
    for name in sorted(CANNED):
        r = ScenarioRunner(CANNED[name](), seed=0); r.run('rina')
        print(name, hashlib.sha256(r.trace.encode()).hexdigest())"

and say so in the commit message — never re-capture to make an
optimization pass.
"""

import hashlib

import pytest

from repro.scenarios import CANNED, ScenarioRunner

#: name -> sha256 of the rina-stack trace at seed 0, captured pre-overhaul.
#: (ring-of-stars joined the registry after the capture; its determinism
#: is covered by the generic two-run checks instead.)
GOLDEN = {
    "e3-e2e": "2361c1e40f69ce17cc263edcf459238bd391cf697e07bc5b6f57521f24a1f9e3",
    "e3-scoped": "2294a2261316ea09a8ed4d9557993215f5dad2d199e25bc63d20bb5929b18852",
    "e4-multihoming": "5a8c41b5117aa5829e25120c6f6868458df0a960aa22ce2b9e79f62cb304032f",
    "e5-mobility": "3dbcc7040c3210e6c10e6939a7252e0d92aff7335c1f25a59a8fcbf19ee48ab4",
    "fault-storm": "23d41f038bc9447f93e4776e66238faf98c035ca2d7bf2d169c0cbb32df91410",
    # network-condition families, captured at their introduction (the
    # jitter/shaping/corruption/reorder models + injector windows):
    "flash-crowd":
        "5fc7bdde8ceb3ce682f5912b4bf85a7fd161df663387a7e6acb84ada8c9b4915",
    "diurnal-load":
        "1ee533e2b19f0986cf26cc77e6af512633e8827d0ba2854b4bb253646a2e98b7",
    "rolling-degradation":
        "dd0037cf8a79a8d360cc529471e4a9d85590fa2675ba2143729ae97702169907",
    "corruption-storm":
        "9e35a524db146ea084edb9dca55b2b10018b66271fa27ed367ca2dc181ab8739",
}


#: shard index -> sha256 of that shard's trace for the canned 2-region
#: split (E6 plant at 2x3, all-nodes-announce flood, seed 0) — captured
#: when the async-grants protocol landed.  (The previous captures' final
#: ``clock=`` line rendered the *parked* engine clock, which is an
#: artifact of the round protocol's last grant horizon; the line now
#: renders ``Engine.last_event_time`` — the causal end of the run — so
#: one capture is bit-identical across per-channel, global-min, and
#: async-grants.  Every event, counter, and delivery row is unchanged
#: from the PR-6 capture.)  A mismatch means a change leaked into the
#: frame-exchange protocol's observable behavior: round structure,
#: injection order, boundary arrival arithmetic, or the flood workload
#: itself.
GOLDEN_SHARDS = {
    0: "1adc9abf4f35a353e32ff7a7499b8d466b33fc5fbf7dbad82311c5e1442a405f",
    1: "cb953bd90a0c9cbcf399934375373c6cffd98c5d7114448124120bc1f7013f00",
}


def test_sharded_traces_match_pinned_fingerprints():
    from repro.experiments.e6_scalability import (build_flood_spec,
                                                  flood_assignment)
    from repro.shard import RegionPlan, all_nodes_announce, run_sharded
    spec = build_flood_spec(2, 3)
    plan = RegionPlan(spec, flood_assignment(2, 3, 2))
    result = run_sharded(plan, all_nodes_announce(spec.nodes), seed=0,
                         mode="inline")
    assert {s["shard"]: s["trace_sha256"] for s in result.shards} == \
        GOLDEN_SHARDS, ("per-shard trace diverged from the capture — a "
                        "change leaked into the shard protocol's "
                        "observable behavior")


def test_sharded_fingerprints_reproduce_inside_pool_workers():
    """Per-shard traces produced by a sharded run *inside a pool worker*
    (spawn start method, coordinator in its in-process fallback) match
    the pinned digests — the shard analogue of the scenario-trace worker
    check below."""
    from repro.sweeps import Job, SweepRunner
    jobs = [Job("repro.experiments.e6_scalability:shard_trace_digests",
                kwargs={"regions": 2, "hosts_per_region": 3, "shards": 2,
                        "seed": 0},
                group="golden-shard", label="canned 2-region split")] * 2
    rows = SweepRunner(workers=2, start_method="spawn").run(jobs)
    assert {row["shard"]: row["sha256"] for row in rows} == GOLDEN_SHARDS


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_canned_trace_matches_pre_overhaul_fingerprint(name):
    runner = ScenarioRunner(CANNED[name](), seed=0)
    runner.run("rina")
    digest = hashlib.sha256(runner.trace.encode()).hexdigest()
    assert digest == GOLDEN[name], (
        f"{name}: trace diverged from the pre-overhaul capture — an "
        f"optimization leaked into observable behavior")


def test_every_canned_spec_is_fingerprinted_or_newer():
    # new canned specs are fine (no pre-overhaul capture exists), but a
    # *removed* golden entry means coverage silently shrank
    assert set(GOLDEN) <= set(CANNED)


def test_golden_fingerprints_reproduce_inside_pool_workers():
    """Traces produced in a worker process match the pinned in-process
    SHA-256s.

    Run under the ``spawn`` start method deliberately: the child
    re-imports the whole stack from scratch, so fork-inherited state
    can't mask platform-dependent drift (RNG seeding, string interning,
    import order) or pickling bugs in the job plumbing.  Any divergence
    between an in-process trace and a worker trace would silently break
    the sweep runner's serial-equivalence contract.
    """
    from repro.sweeps import Job, SweepRunner
    jobs = [Job("repro.scenarios.runner:canned_trace_digest",
                kwargs={"name": name}, group="golden", label=name)
            for name in sorted(GOLDEN)]
    rows = SweepRunner(workers=2, start_method="spawn").run(jobs)
    assert [row["name"] for row in rows] == sorted(GOLDEN)
    for row in rows:
        assert row["sha256"] == GOLDEN[row["name"]], (
            f"{row['name']}: worker-process trace diverged from the pinned "
            f"in-process fingerprint — fork/spawn-dependent state leaked "
            f"into the simulation")
