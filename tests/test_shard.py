"""The shard subsystem: plan validation, conservative-lookahead rounds,
and the sharded-vs-unsharded equivalence contract.

The headline claim under test: a 2-region split of the canned E6 plant
produces delivery rows **bit-identical** to the unsharded run — same
(node, origin, seq) sets *and the same float timestamps* — because a
boundary frame's arrival time is computed with the same arithmetic the
unsharded link would have used, and the conservative lookahead
guarantees no region ever simulates past a frame it has not yet seen.
"""

import math

import pytest

from repro.experiments.e6_scalability import (build_flood_spec,
                                              flood_assignment,
                                              run_flood_scale)
from repro.shard import (LinkSpec, NetworkSpec, RegionPlan, ShardCoordinator,
                         ShardPlanError, all_nodes_announce, flood_workload,
                         run_sharded, run_unsharded)


def canned_case(regions=2, hosts=3, shards=2):
    """The canned 2-region split: E6's star-of-stars plant, cut at the
    border1--core backbone link."""
    spec = build_flood_spec(regions, hosts)
    plan = RegionPlan(spec, flood_assignment(regions, hosts, shards))
    return spec, plan, all_nodes_announce(spec.nodes)


# ----------------------------------------------------------------------
# RegionPlan
# ----------------------------------------------------------------------
class TestRegionPlan:
    def test_partition_shape(self):
        spec, plan, _workload = canned_case()
        assert len(plan.regions) == 2
        assert sorted(plan.regions[0].nodes) == sorted(
            ["core", "border0", "h0_0", "h0_1", "h0_2"])
        assert sorted(plan.regions[1].nodes) == sorted(
            ["border1", "h1_0", "h1_1", "h1_2"])
        # exactly one cut link, present as a boundary port on both sides
        assert [link.name for link in plan.boundary] == ["border1--core"]
        assert [port.link.name for port in plan.regions[0].boundary] == \
            ["border1--core"]
        assert plan.regions[0].lookahead == 0.002
        assert plan.regions[1].lookahead == 0.002
        assert plan.lookahead == 0.002
        # internal links stay internal
        internal = {link.name for region in plan.regions
                    for link in region.links}
        assert "border0--core" in internal
        assert "border1--core" not in internal

    def test_zero_delay_boundary_link_rejected(self):
        spec = NetworkSpec(
            nodes=("a", "b"),
            links=(LinkSpec(a="a", b="b", name="ab", delay=0.0),))
        with pytest.raises(ShardPlanError, match="zero propagation delay"):
            RegionPlan(spec, {"a": 0, "b": 1})
        # the same link is fine when the cut does not cross it
        plan = RegionPlan(spec, {"a": 0, "b": 0})
        assert plan.lookahead == math.inf

    def test_lossy_boundary_link_rejected(self):
        spec = NetworkSpec(
            nodes=("a", "b"),
            links=(LinkSpec(a="a", b="b", name="ab", loss=0.1),))
        with pytest.raises(ShardPlanError, match="loss model"):
            RegionPlan(spec, {"a": 0, "b": 1})

    def test_unassigned_node_rejected(self):
        spec = NetworkSpec(nodes=("a", "b"), links=())
        with pytest.raises(ShardPlanError, match="misses"):
            RegionPlan(spec, {"a": 0})

    def test_spec_validation(self):
        with pytest.raises(ShardPlanError, match="duplicate node"):
            RegionPlan(NetworkSpec(nodes=("a", "a"), links=()), {"a": 0})
        bad = NetworkSpec(
            nodes=("a", "b"),
            links=(LinkSpec(a="a", b="z", name="az"),))
        with pytest.raises(ShardPlanError, match="unknown node"):
            RegionPlan(bad, {"a": 0, "b": 0})

    def test_region_ids_normalized(self):
        spec = NetworkSpec(nodes=("a", "b"), links=())
        plan = RegionPlan(spec, {"a": 7, "b": 3})
        assert plan.region_of("b") == 0
        assert plan.region_of("a") == 1

    def test_spec_roundtrip_from_network(self):
        spec, _plan, _workload = canned_case()
        network = spec.build(seed=3)
        assert NetworkSpec.from_network(network) == spec

    def test_region_network_graph_skips_boundary_half_links(self):
        # a shard's local graph() must only contain edges both of whose
        # ends live in the region — boundary halves have a ghost end
        from repro.shard import ShardEngine
        _spec, plan, workload = canned_case()
        shard = ShardEngine(plan.regions[0], workload, seed=0)
        graph = shard.network.graph()
        assert "border1--core" in shard.network.links
        assert set(graph.nodes) == set(plan.regions[0].nodes)
        assert all("border1--core" != data["link"].name
                   for _a, _b, data in graph.edges(data=True))


# ----------------------------------------------------------------------
# Equivalence: the acceptance-criteria contract
# ----------------------------------------------------------------------
class TestEquivalence:
    def test_two_region_split_matches_unsharded_run_exactly(self):
        spec, plan, workload = canned_case()
        reference = run_unsharded(spec, workload, seed=0)
        sharded = run_sharded(plan, workload, seed=0, mode="inline")
        # every system heard every announcement...
        n = len(spec.nodes)
        assert reference["deliveries"] == n * (n - 1)
        # ...and the sharded run reproduces the delivery rows bit for
        # bit, float timestamps included
        assert sharded.rows == reference["rows"]
        assert sharded.node_stats == reference["node_stats"]
        assert sharded.events == reference["events"]
        assert sharded.frames_relayed > 0

    def test_process_mode_matches_inline_mode(self):
        _spec, plan, workload = canned_case()
        inline = run_sharded(plan, workload, seed=0, mode="inline")
        process = run_sharded(plan, workload, seed=0, mode="process")
        assert process.rows == inline.rows
        assert process.traces == inline.traces
        assert process.rounds == inline.rounds
        assert [s["trace_sha256"] for s in process.shards] == \
            [s["trace_sha256"] for s in inline.shards]

    def test_reruns_are_byte_identical(self):
        _spec, plan, workload = canned_case()
        first = run_sharded(plan, workload, seed=0, mode="inline")
        second = run_sharded(plan, workload, seed=0, mode="inline")
        assert first.traces == second.traces

    def test_four_way_split_keeps_delivery_counts(self):
        plan4 = RegionPlan(build_flood_spec(4, 2),
                           flood_assignment(4, 2, 4))
        workload4 = all_nodes_announce(plan4.spec.nodes)
        reference = run_unsharded(plan4.spec, workload4, seed=0)
        sharded = run_sharded(plan4, workload4, seed=0, mode="inline")
        assert sharded.rows == reference["rows"]
        assert len(sharded.shards) == 4

    def test_flood_scale_row_invariant_across_shard_counts(self):
        serial = run_flood_scale(3, 2, shards=1)
        sharded = run_flood_scale(3, 2, shards=3)
        for key in ("deliveries", "duplicates", "events", "systems"):
            assert sharded[key] == serial[key], key
        assert sharded["shards"] == 3 and serial["shards"] == 1

    def test_sharded_runs_inside_pool_workers_fall_back_inline(self):
        # a daemonic pool worker cannot spawn region processes; the
        # coordinator must transparently run the same rounds in-process
        from repro.sweeps import Job, SweepRunner
        jobs = [Job("repro.experiments.e6_scalability:run_flood_scale",
                    kwargs={"regions": 2, "hosts_per_region": 2,
                            "shards": count, "seed": 1},
                    group="e6-shard", label=f"x{count}")
                for count in (1, 2)]
        serial, sharded = SweepRunner(workers=2).run(jobs)
        assert sharded["deliveries"] == serial["deliveries"]
        assert sharded["events"] == serial["events"]


# ----------------------------------------------------------------------
# Lookahead edge cases
# ----------------------------------------------------------------------
class TestLookaheadEdges:
    def test_region_with_no_boundary_links_completes_in_one_round(self):
        # two disconnected islands: nothing can ever cross, so both
        # regions drain in a single round
        spec = NetworkSpec(
            nodes=("a", "b", "c", "d"),
            links=(LinkSpec(a="a", b="b", name="ab"),
                   LinkSpec(a="c", b="d", name="cd")))
        plan = RegionPlan(spec, {"a": 0, "b": 0, "c": 1, "d": 1})
        assert plan.regions[0].lookahead == math.inf
        result = run_sharded(plan, all_nodes_announce(spec.nodes),
                             mode="inline")
        assert result.rounds == 1
        assert result.frames_relayed == 0
        assert [row["received"] for row in result.node_stats] == [1, 1, 1, 1]

    def test_frame_arriving_exactly_at_horizon_lands_next_round(self):
        # engineered so a's announcement frame toward b arrives at
        # *exactly* the horizon b runs to in the capture round
        # (floor + lookahead(b)): serialization of 6250 bytes at 1e8
        # bps takes 0.0005 s, c's pending announcement pins the next
        # round floor to exactly that instant, and 0.0005 + 0.001 is
        # then both b's horizon and the frame's arrival time.
        spec = NetworkSpec(
            nodes=("a", "b", "c"),
            links=(LinkSpec(a="a", b="b", name="ab", delay=0.001),
                   LinkSpec(a="a", b="c", name="ac", delay=0.0002)))
        plan = RegionPlan(spec, {"a": 0, "b": 1, "c": 2})
        assert plan.regions[1].lookahead == 0.001
        serialization = 6250 * 8.0 / 1e8
        workload = flood_workload(
            [("a", 0.0), ("c", serialization)], size_bytes=6250)
        results = [run_sharded(plan, workload, seed=0, mode=mode)
                   for mode in ("inline", "inline", "process")]
        first = results[0]
        by_key = {(row["node"], row["origin"]): row["time"]
                  for row in first.rows}
        # delivered despite landing on the horizon, at the exact time
        # the unsharded link would have computed
        assert by_key[("b", "a")] == serialization + 0.001
        assert by_key[("c", "a")] == serialization + 0.0002
        reference = run_unsharded(spec, workload, seed=0)
        assert first.rows == reference["rows"]
        # ... and deterministically: byte-identical reruns, any mode
        assert results[1].traces == first.traces
        assert results[2].traces == first.traces

    def test_until_caps_the_run_and_advances_every_clock(self):
        spec, plan, workload = canned_case()
        capped = run_sharded(plan, workload, seed=0, mode="inline",
                             until=0.0001)
        full = run_sharded(plan, workload, seed=0, mode="inline")
        assert all(s["clock"] == 0.0001 for s in capped.shards)
        assert sum(s["deliveries"] for s in capped.shards) < \
            sum(s["deliveries"] for s in full.shards)

    def test_coordinator_rejects_unknown_mode_and_start_method(self):
        _spec, plan, workload = canned_case()
        with pytest.raises(ValueError, match="unknown mode"):
            ShardCoordinator(plan, workload, mode="threads")
        with pytest.raises(ValueError, match="unknown start method"):
            ShardCoordinator(plan, workload, start_method="Spawn")


# ----------------------------------------------------------------------
# Condition-bearing links through the spec (the PR-9 leftover)
# ----------------------------------------------------------------------
class TestConditionSpecCapture:
    """Interior links carry their condition models through the
    pure-data spec; boundary cut links still refuse them, loudly."""

    def conditioned_spec(self):
        # a--b conditioned interior (region 0), c--d conditioned
        # interior (region 1), b--c the clean cut link
        jitter = {"jitter": {"model": "uniform", "amplitude": 0.0002,
                             "preserve_order": True}}
        shaped = {"shaper": {"rate_bps": 5e7, "burst_bytes": 4096}}
        return NetworkSpec(
            nodes=("a", "b", "c", "d"),
            links=(LinkSpec(a="a", b="b", name="ab", conditions=jitter),
                   LinkSpec(a="b", b="c", name="bc", delay=0.002),
                   LinkSpec(a="c", b="d", name="cd", conditions=shaped)))

    def test_from_network_captures_condition_grammar(self):
        spec = self.conditioned_spec()
        network = spec.build(seed=5)
        captured = NetworkSpec.from_network(network)
        by_name = {link.name: link for link in captured.links}
        assert by_name["ab"].conditions == {
            "jitter": {"model": "uniform", "amplitude": 0.0002,
                       "preserve_order": True}}
        assert by_name["cd"].conditions == {
            "shaper": {"rate_bps": 5e7, "burst_bytes": 4096}}
        assert by_name["bc"].conditions is None
        # and the capture itself rebuilds: spec -> network -> spec is a
        # fixed point for the canonical grammar forms
        assert NetworkSpec.from_network(captured.build(seed=5)) == captured

    def test_conditioned_boundary_link_rejected_with_clear_error(self):
        jitter = {"jitter": {"model": "uniform", "amplitude": 0.0002}}
        spec = NetworkSpec(
            nodes=("a", "b"),
            links=(LinkSpec(a="a", b="b", name="ab", conditions=jitter),))
        with pytest.raises(ShardPlanError,
                           match="carries link conditions"):
            RegionPlan(spec, {"a": 0, "b": 1})
        # the same link is fine when the cut does not cross it
        plan = RegionPlan(spec, {"a": 0, "b": 0})
        assert plan.regions[0].links[0].conditions == jitter

    def test_conditioned_interior_links_sharded_bit_identical(self):
        # the acceptance pin: per-link named RNG streams depend only on
        # (seed, link name), so a conditioned *interior* link draws the
        # same jitter offsets sharded and unsharded — rows, stats, and
        # timestamps all bit-identical
        spec = self.conditioned_spec()
        plan = RegionPlan(spec, {"a": 0, "b": 0, "c": 1, "d": 1})
        workload = all_nodes_announce(spec.nodes)
        reference = run_unsharded(spec, workload, seed=3)
        for protocol in ("per-channel", "async-grants"):
            sharded = run_sharded(plan, workload, seed=3, mode="inline",
                                  protocol=protocol)
            assert sharded.rows == reference["rows"], protocol
            assert sharded.node_stats == reference["node_stats"], protocol

    def test_conditioned_interior_links_survive_process_mode(self):
        spec = self.conditioned_spec()
        plan = RegionPlan(spec, {"a": 0, "b": 0, "c": 1, "d": 1})
        workload = all_nodes_announce(spec.nodes)
        inline = run_sharded(plan, workload, seed=3, mode="inline")
        process = run_sharded(plan, workload, seed=3, mode="process")
        assert process.rows == inline.rows
        assert process.traces == inline.traces
