"""Shape tests for every experiment (DESIGN.md §4).

A position paper publishes no numbers, so "reproduction" means the
qualitative claims hold: who wins, in which direction, with which scaling.
Parameters are kept small — the benchmarks run the full sweeps.
"""

import math

import pytest

from repro.core.qos import BEST_EFFORT, RELIABLE


class TestE1TwoSystem:
    def test_reliable_cube_delivers_everything_under_loss(self):
        from repro.experiments.e1_two_system import run_transfer
        row = run_transfer(0.15, RELIABLE, messages=60)
        assert row["delivery_ratio"] == 1.0
        assert row["retransmissions"] > 0

    def test_best_effort_cube_loses_roughly_the_loss_rate(self):
        from repro.experiments.e1_two_system import run_transfer
        row = run_transfer(0.2, BEST_EFFORT, messages=150)
        assert 0.45 < row["delivery_ratio"] < 0.95
        assert row["retransmissions"] == 0

    def test_port_ids_local_no_well_known(self):
        from repro.experiments.e1_two_system import run_port_id_locality
        result = run_port_id_locality()
        assert result["client_ports_distinct"]
        assert result["no_well_known_port"]


class TestE2Relay:
    def test_rtt_grows_with_hops_and_relays_hold_no_flow_state(self):
        from repro.experiments.e2_relay import run_relay
        short = run_relay(1, messages=20)
        long = run_relay(3, messages=20)
        assert short["delivered"] == long["delivered"] == 20
        assert long["rtt_p50_ms"] > short["rtt_p50_ms"]
        assert long["relay_flow_state"] == 0
        assert long["endpoint_flow_state"] >= 1
        assert long["relayed_min"] > 0


class TestE3ScopedRecovery:
    def test_scoped_beats_e2e_under_wireless_loss(self):
        from repro.experiments.e3_scoped_recovery import run_transfer
        e2e = run_transfer("e2e", 0.15, total_bytes=60_000)
        scoped = run_transfer("scoped", 0.15, total_bytes=60_000)
        assert scoped["goodput_mbps"] > e2e["goodput_mbps"]
        # the wide-scope layer never had to recover in the scoped config
        assert scoped["top_layer_retx"] == 0
        assert e2e["top_layer_retx"] > 0
        assert scoped["wireless_layer_retx"] > 0

    def test_without_loss_the_extra_layer_only_costs_overhead(self):
        from repro.experiments.e3_scoped_recovery import run_transfer
        e2e = run_transfer("e2e", 0.0, total_bytes=60_000)
        scoped = run_transfer("scoped", 0.0, total_bytes=60_000)
        assert scoped["goodput_mbps"] == pytest.approx(e2e["goodput_mbps"],
                                                       rel=0.2)


class TestE4Multihoming:
    def test_rina_survives_and_outage_tracks_keepalive_policy(self):
        from repro.experiments.e4_multihoming import run_rina
        fast = run_rina(keepalive_interval=0.1)
        slow = run_rina(keepalive_interval=0.4)
        assert fast["survived"] and slow["survived"]
        assert fast["outage_s"] < slow["outage_s"]
        assert fast["outage_s"] < 1.0

    def test_tcp_never_recovers(self):
        from repro.experiments.e4_multihoming import run_tcp
        row = run_tcp()
        assert not row["survived"]
        assert math.isinf(row["outage_s"])

    def test_sctp_recovers_after_heartbeat_detection(self):
        from repro.experiments.e4_multihoming import run_sctp
        row = run_sctp()
        assert row["survived"]
        assert row["failover_after_s"] is None or row["failover_after_s"] > 0


class TestE5Mobility:
    def test_intra_region_updates_stay_local_and_flow_survives(self):
        from repro.experiments.e5_mobility import run_rina
        rows = run_rina()
        intra = [r for r in rows if r["move"] == "intra-region"][0]
        inter = [r for r in rows if r["move"] == "inter-region"][0]
        assert intra["flow_survived"] and inter["flow_survived"]
        # Fig 5's claim: a local move is invisible above
        assert intra["updates_region1"] > 0
        assert intra["updates_metro"] == 0
        assert inter["updates_metro"] > 0

    def test_mobileip_pays_triangle_stretch(self):
        from repro.experiments.e5_mobility import run_mobileip
        rows = run_mobileip()
        assert all(r["flow_survived"] for r in rows)
        assert all(r["stretch"] > 1.0 for r in rows)
        assert all(r["registration_msgs"] >= 1 for r in rows)


class TestE6Scalability:
    def test_recursive_state_and_update_scope_smaller(self):
        from repro.experiments.e6_scalability import run_config
        flat = run_config("flat", regions=3, hosts_per_region=3)
        recursive = run_config("recursive", regions=3, hosts_per_region=3)
        assert recursive["total_state"] < flat["total_state"]
        assert recursive["max_table"] < flat["max_table"]
        assert recursive["flap_update_scope"] < flat["flap_update_scope"]
        # flat floods the whole network on a flap
        assert flat["flap_update_scope"] == flat["systems"]

    def test_recursive_stack_still_delivers_end_to_end(self):
        from repro.experiments.e6_scalability import verify_end_to_end
        result = verify_end_to_end(regions=3, hosts_per_region=3)
        assert result["delivered"] == 10


class TestE7Security:
    def test_outsider_blocked_with_auth(self):
        from repro.experiments.e7_security import run_rina_outsider
        row = run_rina_outsider("challenge", probes=20)
        assert not row["attacker_enrolled"]
        assert row["enroll_denials"] >= 1
        assert row["pdus_blocked_at_gate"] == row["pdus_injected"]
        assert row["members_discovered"] == 0
        assert not row["service_reached"]

    def test_public_dif_is_the_degenerate_open_case(self):
        from repro.experiments.e7_security import run_rina_outsider
        row = run_rina_outsider("none", probes=5)
        assert row["attacker_enrolled"]
        assert row["service_reached"]

    def test_insider_blocked_by_access_policy(self):
        from repro.experiments.e7_security import run_rina_insider_acl
        row = run_rina_insider_acl()
        assert not row["rogue_flow_granted"]
        assert row["rogue_failure"] == "access-denied"
        assert row["allowed_flow_granted"]

    def test_ip_world_fully_discoverable(self):
        from repro.experiments.e7_security import run_ip_scan
        row = run_ip_scan()
        assert row["members_discovered"] >= 3
        assert row["service_reached"]


class TestE8Utilization:
    def test_priority_scheduling_sustains_higher_load(self):
        from repro.experiments.e8_utilization import run_point
        fifo = run_point("fifo", 1.1, duration=3.0)
        priority = run_point("priority", 1.1, duration=3.0)
        assert not fifo["sla_met"]
        assert priority["sla_met"]
        assert priority["p99_ms"] < fifo["p99_ms"]

    def test_all_schedulers_fine_at_low_load(self):
        from repro.experiments.e8_utilization import run_point
        for scheduler in ("fifo", "priority", "drr"):
            row = run_point(scheduler, 0.5, duration=2.0)
            assert row["sla_met"], row


class TestE9PrivateAddresses:
    def test_nat_world_breaks_where_dif_world_does_not(self):
        from repro.experiments.e9_private_addresses import (run_ip_nat,
                                                            run_rina)
        nat = run_ip_nat(sites=2, hosts_per_site=2, flows_per_host=20,
                         port_pool=24)
        rina = run_rina(sites=2, hosts_per_site=2, flows_per_host=10)
        # NAT: state grows, pool exhausts, inbound is dead
        assert nat["border_state_total"] > 0
        assert nat["pool_exhausted_drops"] > 0
        assert nat["outbound_established"] < nat["outbound_attempted"]
        assert nat["inbound_succeeded"] == 0 and nat["inbound_blocked"]
        # DIF: identical private addresses everywhere, everything works
        assert rina["site_addresses_identical"]
        assert rina["outbound_established"] == rina["outbound_attempted"]
        assert rina["inbound_succeeded"] == rina["inbound_attempts"]
        assert rina["border_state_total"] == 0


class TestA1Addressing:
    def test_topological_aggregates_best(self):
        from repro.experiments.a1_addressing import run_policy
        flat = run_policy("flat", side=4)
        topological = run_policy("topological", side=4)
        mismatched = run_policy("mismatched", side=4)
        assert topological["aggregated_mean"] < flat["aggregated_mean"]
        assert topological["aggregated_mean"] < mismatched["aggregated_mean"]
        for row in (flat, topological, mismatched):
            assert row["lookups_consistent"]


class TestA2EfcpPolicies:
    def test_selective_beats_gobackn_on_retransmissions(self):
        from repro.experiments.a2_efcp_policies import run_policy
        selective = run_policy("selective", 0.1, total_bytes=60_000)
        gobackn = run_policy("gobackn", 0.1, total_bytes=60_000)
        assert selective["delivery_ratio"] == 1.0
        assert gobackn["delivery_ratio"] == 1.0
        assert selective["goodput_mbps"] >= gobackn["goodput_mbps"] * 0.8

    def test_no_retx_loses_data(self):
        from repro.experiments.a2_efcp_policies import run_policy
        row = run_policy("none", 0.15, total_bytes=60_000)
        assert row["delivery_ratio"] < 1.0
        assert row["retransmissions"] == 0


class TestE3Bursty:
    def test_scoped_wins_under_bursty_fades(self):
        from repro.experiments.e3_scoped_recovery import run_bursty
        e2e = run_bursty("e2e", total_bytes=60_000)
        scoped = run_bursty("scoped", total_bytes=60_000)
        assert scoped["goodput_mbps"] > e2e["goodput_mbps"]
        assert scoped["top_layer_retx"] == 0


class TestA4HandoverStrategy:
    def test_break_before_make_survives_but_pays(self):
        from repro.experiments.e5_mobility import run_rina
        mbb = [r for r in run_rina(make_before_break=True)
               if r["move"] == "inter-region"][0]
        bbm = [r for r in run_rina(make_before_break=False)
               if r["move"] == "inter-region"][0]
        assert mbb["flow_survived"] and bbm["flow_survived"]
        assert bbm["outage_s"] > mbb["outage_s"]


class TestMembershipBound:
    def test_full_dif_denies_enrollment(self):
        """§6.5: 'management policies that constrain the membership size'."""
        from repro.core import (Dif, DifPolicies, add_shims, make_systems,
                                run_until, shim_between)
        from repro.sim.network import Network
        network = Network(seed=3)
        for name in ("a", "b", "c"):
            network.add_node(name)
        network.connect("a", "b")
        network.connect("a", "c")
        systems = make_systems(network)
        add_shims(systems, network)
        dif = Dif("small", DifPolicies(max_members=2))
        a_ipcp = systems["a"].create_ipcp(dif)
        a_ipcp.bootstrap()
        for peer in ("b", "c"):
            systems["a"].publish_ipcp("small", shim_between(network, "a", peer))
            systems[peer].create_ipcp(dif)
        outcomes = []
        systems["b"].enroll("small", a_ipcp.name,
                            shim_between(network, "a", "b"),
                            done=lambda ok, r: outcomes.append((ok, r)))
        run_until(network, lambda: outcomes, timeout=20)
        assert outcomes[0][0]
        systems["c"].enroll("small", a_ipcp.name,
                            shim_between(network, "a", "c"),
                            done=lambda ok, r: outcomes.append((ok, r)))
        run_until(network, lambda: len(outcomes) == 2, timeout=20)
        assert not outcomes[1][0]
        assert dif.member_count() == 2


class TestA5Depth:
    def test_each_layer_costs_but_modestly(self):
        from repro.experiments.a5_depth import run_depth
        shallow = run_depth(1, total_bytes=60_000)
        deep = run_depth(3, total_bytes=60_000)
        assert shallow["completed"] and deep["completed"]
        assert deep["goodput_mbps"] < shallow["goodput_mbps"]
        assert (deep["wire_bytes_per_payload_byte"]
                > shallow["wire_bytes_per_payload_byte"])
        assert deep["goodput_mbps"] > 0.7 * shallow["goodput_mbps"]


class TestE6IpBaseline:
    def test_rip_world_matches_flat_dif_costs(self):
        from repro.experiments.e6_scalability import run_config, run_ip_rip
        rip = run_ip_rip(3, 3)
        flat = run_config("flat", regions=3, hosts_per_region=3)
        # same plant: the real-protocol IP world carries flat-sized state,
        # its flap footprint reaches every system, and it pays periodic
        # update chatter on top
        assert rip["total_state"] == flat["total_state"]
        assert rip["flap_update_scope"] == rip["systems"]
        assert rip["updates_per_s"] > 0
