"""The shared-memory SPSC ring: framing, wraparound, backpressure,
fallback, corruption rejection, and segment lifecycle.

The integrated coordinator protocol keeps at most one record per
direction in flight (strict request-reply), so the blocking paths —
ring-full backpressure, reader parking — are exercised here directly
with threads, at the ring level, where they can actually occur.
"""

import multiprocessing
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.shard import (RingError, SharedMemoryRingTransport, SpscRing,
                         ring_supported)
from repro.shard.coordinator import _recv_frames, _stage_frames
from repro.shard.framing import pack_frames

pytestmark = pytest.mark.skipif(
    not ring_supported(), reason="multiprocessing.shared_memory missing")

CTX = multiprocessing.get_context("spawn")


def make_ring(capacity=128):
    ring = SpscRing.create(CTX, capacity)
    return ring


def payload_for(index: int, size: int) -> bytes:
    # content varies with both index and offset so any misframed or
    # torn read produces a mismatch, not a coincidental pass
    return bytes((index * 31 + j) % 251 for j in range(size))


# ----------------------------------------------------------------------
# Framing and wraparound
# ----------------------------------------------------------------------
class TestRoundTrip:
    def test_empty_and_max_payloads(self):
        ring = make_ring(128)
        try:
            assert ring.max_payload == 128 - 16
            for size in (0, 1, 7, 8, ring.max_payload):
                payload = payload_for(size, size)
                if not ring.try_write(payload):
                    # the edge run was burned by a standalone wrap
                    # marker; draining it (a None read) frees the space
                    assert ring.try_read() is None
                    assert ring.try_write(payload)
                assert ring.try_read() == payload
        finally:
            ring.close()

    def test_empty_ring_reads_none(self):
        ring = make_ring(128)
        try:
            assert ring.try_read() is None
            assert ring.try_write(b"x")
            assert ring.try_read() == b"x"
            assert ring.try_read() is None
        finally:
            ring.close()

    @settings(max_examples=200, deadline=None)
    @given(sizes=st.lists(st.integers(min_value=0, max_value=112),
                          min_size=1, max_size=120))
    def test_wraparound_at_every_offset(self, sizes):
        # a small ring plus arbitrary size sequences walks the write
        # offset over every 8-aligned position, including the wrap
        # marker path where a record cannot fit before the data edge
        ring = make_ring(128)
        try:
            for index, size in enumerate(sizes):
                payload = payload_for(index, size)
                if not ring.try_write(payload):
                    # an empty ring can still refuse once: a standalone
                    # wrap marker burned the edge and must drain first
                    assert ring.try_read() is None
                    assert ring.try_write(payload)
                assert ring.try_read() == payload
            assert ring.try_read() is None
        finally:
            ring.close()

    @settings(max_examples=100, deadline=None)
    @given(sizes=st.lists(st.integers(min_value=0, max_value=40),
                          min_size=1, max_size=60),
           data=st.data())
    def test_fifo_with_queued_records(self, sizes, data):
        # interleave bursts of writes with drains: records queue in
        # FIFO order across wrap markers
        ring = make_ring(256)
        try:
            queued = []
            index = 0
            for size in sizes:
                payload = payload_for(index, size)
                index += 1
                if ring.try_write(payload):
                    queued.append(payload)
                else:
                    # full: drain one and retry once
                    assert queued, "full ring with nothing queued"
                    assert ring.try_read() == queued.pop(0)
                    if ring.try_write(payload):
                        queued.append(payload)
                if queued and data.draw(st.booleans()):
                    assert ring.try_read() == queued.pop(0)
            while queued:
                assert ring.try_read() == queued.pop(0)
            assert ring.try_read() is None
        finally:
            ring.close()


# ----------------------------------------------------------------------
# Backpressure
# ----------------------------------------------------------------------
class TestBackpressure:
    def test_full_ring_refuses_without_blocking(self):
        ring = make_ring(64)
        try:
            assert ring.try_write(b"a" * 40)   # 8 + 40 padded = 56 used
            assert not ring.try_write(b"b" * 40)
            assert ring.try_read() == b"a" * 40
            assert ring.try_write(b"b" * 40)
        finally:
            ring.close()

    def test_writer_waits_out_full_ring_without_deadlock(self):
        # a writer thread pushes far more bytes than the ring holds
        # while the main thread drains with a lag: every record arrives,
        # in order, and both sides finish
        ring = make_ring(64)
        count = 200
        errors = []

        def produce():
            try:
                for index in range(count):
                    ring.write(payload_for(index, 24), timeout=30.0)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        writer = threading.Thread(target=produce, daemon=True)
        try:
            writer.start()
            for index in range(count):
                assert ring.read(timeout=30.0) == payload_for(index, 24)
            writer.join(timeout=30.0)
            assert not writer.is_alive()
            assert not errors
            assert ring.try_read() is None
        finally:
            ring.close()

    def test_reader_waits_for_late_writer(self):
        ring = make_ring(128)

        def produce_late():
            ring.write(b"late", timeout=30.0)

        writer = threading.Timer(0.05, produce_late)
        try:
            writer.start()
            assert ring.read(timeout=30.0) == b"late"
        finally:
            writer.join()
            ring.close()

    def test_write_timeout_raises_instead_of_hanging(self):
        ring = make_ring(64)
        try:
            assert ring.try_write(b"a" * 40)
            with pytest.raises(RingError, match="timed out"):
                ring.write(b"b" * 40, timeout=0.2)
        finally:
            ring.close()


# ----------------------------------------------------------------------
# Oversize and torn-record handling
# ----------------------------------------------------------------------
class TestEdges:
    def test_oversized_payload_never_enters_the_ring(self):
        ring = make_ring(64)
        try:
            big = b"x" * (ring.max_payload + 1)
            assert not ring.try_write(big)
            with pytest.raises(RingError, match="exceeds ring max_payload"):
                ring.write(big, timeout=0.2)
        finally:
            ring.close()

    def test_torn_header_rejected_not_resynced(self):
        ring = make_ring(128)
        try:
            assert ring.try_write(b"fine")
            # flip a tag bit behind the writer's back: the checksum no
            # longer matches, and the reader must refuse loudly
            data_start = 192
            buf = ring._shm.buf
            buf[data_start + 4] ^= 0x01
            with pytest.raises(RingError, match="torn or corrupt"):
                ring.try_read()
        finally:
            ring.close()

    def test_out_of_sequence_tag_rejected(self):
        # a reader that missed a record (or a stray writer) shows up as
        # a tag mismatch even when the checksum is self-consistent
        ring = make_ring(128)
        try:
            assert ring.try_write(b"one")
            assert ring.try_read() == b"one"
            assert ring.try_write(b"two")
            ring._read_tag = 0          # simulate a desynced reader
            with pytest.raises(RingError, match="expected tag"):
                ring.try_read()
        finally:
            ring.close()

    def test_capacity_validation(self):
        with pytest.raises(RingError, match="multiple of 8"):
            SpscRing.create(CTX, 100)
        with pytest.raises(RingError, match="multiple of 8"):
            SpscRing.create(CTX, 8)

    def test_attach_to_garbage_segment_rejected(self):
        from multiprocessing import shared_memory
        shm = shared_memory.SharedMemory(create=True, size=256)
        try:
            with pytest.raises(RingError, match="bad ring magic"):
                SpscRing.attach((shm.name, CTX.Condition()))
        finally:
            shm.close()
            shm.unlink()


# ----------------------------------------------------------------------
# The transport: descriptor selection + pipe fallback
# ----------------------------------------------------------------------
FRAMES = [(0.0105, "ab", ("t", (1, "payload")), 64),
          (0.0207, "ab", None, 32)]


class TestTransportStaging:
    def make_transport(self, capacity=1 << 16):
        return SharedMemoryRingTransport(
            tx=SpscRing.create(CTX, capacity),
            rx=SpscRing.create(CTX, capacity))

    def test_empty_batch_is_descriptor_only(self):
        transport = self.make_transport()
        try:
            descriptor, tail, nbytes = _stage_frames(transport, [])
            assert descriptor == ("empty",) and tail is None and nbytes == 0
            assert _recv_frames(None, transport, descriptor) == ([], 0)
        finally:
            transport.close()

    def test_small_batch_rides_the_ring(self):
        transport = self.make_transport()
        try:
            packed = pack_frames(FRAMES)
            descriptor, tail, nbytes = _stage_frames(transport, FRAMES)
            assert descriptor == ("ring", len(packed))
            assert tail is None and nbytes == len(packed)
            # the receiving side of this direction is the same pair's
            # tx ring; swap as attach_pair would
            peer = SharedMemoryRingTransport(tx=transport.rx,
                                             rx=transport.tx)
            frames, got = _recv_frames(None, peer, descriptor)
            assert frames == FRAMES and got == len(packed)
        finally:
            transport.close()

    def test_oversized_batch_falls_back_to_pipe_bytes(self):
        transport = self.make_transport(capacity=64)
        conn_a, conn_b = CTX.Pipe()
        try:
            packed = pack_frames(FRAMES)
            assert len(packed) > transport.tx.max_payload
            descriptor, tail, nbytes = _stage_frames(transport, FRAMES)
            assert descriptor == ("bytes", len(packed))
            assert tail == packed and nbytes == len(packed)
            conn_a.send_bytes(tail)
            frames, got = _recv_frames(conn_b, transport, descriptor)
            assert frames == FRAMES and got == len(packed)
            # nothing entered the ring
            assert transport.rx.try_read() is None
            assert transport.tx.try_read() is None
        finally:
            conn_a.close()
            conn_b.close()
            transport.close()


# ----------------------------------------------------------------------
# Segment lifecycle: no leaks on close or worker failure
# ----------------------------------------------------------------------
class TestLifecycle:
    def attach_should_fail(self, name):
        from multiprocessing import shared_memory
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_close_unlinks_created_segments(self):
        transport = SharedMemoryRingTransport.create_pair(CTX)
        names = [transport.tx.name, transport.rx.name]
        transport.close()
        for name in names:
            self.attach_should_fail(name)

    def test_close_is_idempotent(self):
        ring = make_ring()
        ring.close()
        ring.close()
        with pytest.raises(RingError, match="closed ring"):
            ring.try_write(b"x")
        with pytest.raises(RingError, match="closed ring"):
            ring.try_read()

    def test_worker_failure_leaves_no_segments(self):
        # a worker that dies during construction (bogus workload kind)
        # must not leak its rings: the coordinator's close path unlinks
        # them even though the step protocol never ran
        from repro.experiments.e6_scalability import (build_flood_spec,
                                                      flood_assignment)
        from repro.shard import RegionPlan, ShardRunError
        from repro.shard.coordinator import ShardCoordinator
        spec = build_flood_spec(2, 2)
        plan = RegionPlan(spec, flood_assignment(2, 2, 2))
        coordinator = ShardCoordinator(plan, {"kind": "no-such-workload"},
                                       mode="process", transport="ring",
                                       start_method="spawn")
        proxies = coordinator._make_proxies()
        names = [ring.name for proxy in proxies
                 for ring in (proxy._ring.tx, proxy._ring.rx)]
        assert len(names) == 4
        try:
            with pytest.raises(ShardRunError):
                for proxy in proxies:
                    proxy.handshake()
        finally:
            for proxy in proxies:
                proxy.close()
        for name in names:
            self.attach_should_fail(name)

    def test_spawn_ring_run_leaves_no_segments(self):
        # end-to-end: a full spawn run over the ring transport leaves
        # /dev/shm (or the platform equivalent) exactly as it found it
        import glob
        from repro.experiments.e6_scalability import (build_flood_spec,
                                                      flood_assignment)
        from repro.shard import RegionPlan, all_nodes_announce, run_sharded
        spec = build_flood_spec(2, 2)
        plan = RegionPlan(spec, flood_assignment(2, 2, 2))
        workload = all_nodes_announce(spec.nodes)
        before = set(glob.glob("/dev/shm/psm_*"))
        inline = run_sharded(plan, workload, seed=0, mode="inline")
        result = run_sharded(plan, workload, seed=0, mode="process",
                             transport="ring", start_method="spawn")
        assert result.rows == inline.rows
        assert result.traces == inline.traces
        assert result.relay_bytes > 0
        # every segment this run created is gone again (unrelated
        # segments that pre-existed are tolerated, new ones are not)
        leaked = set(glob.glob("/dev/shm/psm_*")) - before
        assert not leaked, f"leaked shared-memory segments: {leaked}"


class TestRingSmokeUnderTinyCapacity:
    def test_tiny_ring_forces_pipe_fallback_yet_matches(self, monkeypatch):
        # shrink the rings until (almost) every batch overflows: the
        # run must silently ride the pipe-bytes lane and stay exact
        original = SharedMemoryRingTransport.create_pair.__func__

        def tiny_pair(cls, context, capacity=None):
            return original(cls, context, 64)

        monkeypatch.setattr(SharedMemoryRingTransport, "create_pair",
                            classmethod(tiny_pair))
        from repro.experiments.e6_scalability import (build_flood_spec,
                                                      flood_assignment)
        from repro.shard import RegionPlan, all_nodes_announce, run_sharded
        spec = build_flood_spec(2, 2)
        plan = RegionPlan(spec, flood_assignment(2, 2, 2))
        workload = all_nodes_announce(spec.nodes)
        inline = run_sharded(plan, workload, seed=0, mode="inline")
        result = run_sharded(plan, workload, seed=0, mode="process",
                             transport="ring", start_method="spawn")
        assert result.rows == inline.rows
        assert result.traces == inline.traces
