"""Unit tests for tracing/metrics and seeded RNG streams."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.sim.rng import RandomStreams
from repro.sim.trace import Counter, TimeSeries, Tracer


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        counter = Counter("x")
        counter.incr()
        counter.incr(4)
        assert counter.value == 5

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter("x").incr(-1)


class TestTimeSeries:
    def test_summary_statistics(self):
        series = TimeSeries("s")
        for index, value in enumerate([1.0, 2.0, 3.0, 4.0]):
            series.add(float(index), value)
        assert series.mean() == 2.5
        assert series.minimum() == 1.0
        assert series.maximum() == 4.0
        assert series.count() == 4

    def test_empty_statistics_are_nan(self):
        series = TimeSeries("s")
        assert math.isnan(series.mean())
        assert math.isnan(series.percentile(50))
        assert math.isnan(series.stddev())

    def test_percentile_bounds_validation(self):
        series = TimeSeries("s")
        series.add(0, 1)
        with pytest.raises(ValueError):
            series.percentile(101)

    def test_percentile_extremes(self):
        series = TimeSeries("s")
        for value in range(1, 101):
            series.add(0.0, float(value))
        assert series.percentile(100) == 100.0
        assert series.percentile(50) == 50.0
        assert series.percentile(99) == 99.0

    @given(st.lists(st.floats(min_value=-1e9, max_value=1e9,
                              allow_nan=False), min_size=1, max_size=100))
    def test_property_percentiles_within_range(self, values):
        series = TimeSeries("s")
        for value in values:
            series.add(0.0, value)
        for pct in (0, 25, 50, 75, 100):
            result = series.percentile(pct)
            assert min(values) <= result <= max(values)

    def test_stddev_of_constant_is_zero(self):
        series = TimeSeries("s")
        for _ in range(5):
            series.add(0.0, 3.0)
        assert series.stddev() == 0.0

    def test_summary_keys(self):
        series = TimeSeries("s")
        series.add(0.0, 1.0)
        assert set(series.summary()) == {"count", "mean", "min", "max",
                                         "p50", "p95", "p99"}


class TestTracer:
    def test_counters_created_on_demand(self):
        tracer = Tracer()
        tracer.count("a")
        tracer.count("a", 2)
        assert tracer.counter_value("a") == 3
        assert tracer.counter_value("missing") == 0

    def test_counters_snapshot_sorted(self):
        tracer = Tracer()
        tracer.count("b")
        tracer.count("a")
        assert list(tracer.counters()) == ["a", "b"]

    def test_series_sampling(self):
        tracer = Tracer()
        tracer.sample("s", 1.0, 10.0)
        tracer.sample("s", 2.0, 20.0)
        assert tracer.series("s").count() == 2
        assert tracer.series_names() == ["s"]

    def test_event_log_filtering(self):
        tracer = Tracer()
        tracer.log(1.0, "enroll", who="x")
        tracer.log(2.0, "failover", which=1)
        assert len(tracer.events()) == 2
        assert tracer.events("enroll")[0][2] == {"who": "x"}

    def test_event_log_bounded(self):
        tracer = Tracer(log_limit=3)
        for index in range(10):
            tracer.log(float(index), "k")
        assert len(tracer.events()) == 3


class TestRandomStreams:
    def test_same_seed_same_sequence(self):
        a = RandomStreams(42).stream("loss")
        b = RandomStreams(42).stream("loss")
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_different_streams_are_independent(self):
        streams = RandomStreams(42)
        first = [streams.stream("a").random() for _ in range(5)]
        second = [streams.stream("b").random() for _ in range(5)]
        assert first != second

    def test_stream_stability_under_new_streams(self):
        streams_one = RandomStreams(1)
        value_before = streams_one.stream("x").random()
        streams_two = RandomStreams(1)
        streams_two.stream("unrelated")  # creating another stream first
        value_after = streams_two.stream("x").random()
        assert value_before == value_after

    def test_fork_derives_new_master(self):
        parent = RandomStreams(7)
        child_a = parent.fork("trial-1")
        child_b = parent.fork("trial-2")
        assert child_a.seed != child_b.seed
        assert child_a.stream("x").random() != child_b.stream("x").random()

    def test_fork_deterministic(self):
        assert RandomStreams(7).fork("t").seed == RandomStreams(7).fork("t").seed
