"""Integration tests: enrollment, adjacency, and departure (§5.1/§5.2).

These run the real protocol over simulated links — two or three systems,
shims, and a DIF — rather than mocking pieces.
"""

import pytest

from repro.core import (ChallengeResponse, Dif, DifPolicies, NoAuth,
                        Orchestrator, PresharedKey, add_shims, build_dif_over,
                        make_systems, run_until, shim_between, shim_name_for)
from repro.core.names import Address
from repro.sim.link import UniformLoss
from repro.sim.network import Network


def two_systems(seed=1, loss=0.0):
    network = Network(seed=seed)
    network.add_node("a")
    network.add_node("b")
    network.connect("a", "b", loss=UniformLoss(loss) if loss else None)
    systems = make_systems(network)
    add_shims(systems, network)
    return network, systems


class TestBootstrapAndJoin:
    def test_bootstrap_assigns_first_address(self):
        network, systems = two_systems()
        dif = Dif("d")
        ipcp = systems["a"].create_ipcp(dif)
        address = ipcp.bootstrap()
        assert ipcp.enrolled
        assert dif.members() == {address: ipcp}

    def test_join_assigns_address_and_adjacency(self):
        network, systems = two_systems()
        dif = Dif("d")
        a_ipcp = systems["a"].create_ipcp(dif)
        a_ipcp.bootstrap()
        systems["a"].publish_ipcp("d", shim_between(network, "a", "b"))
        b_ipcp = systems["b"].create_ipcp(dif)
        outcomes = []
        systems["b"].enroll("d", a_ipcp.name, shim_between(network, "a", "b"),
                            done=lambda ok, reason: outcomes.append((ok, reason)))
        run_until(network, lambda: outcomes, timeout=20)
        assert outcomes[0][0]
        assert b_ipcp.enrolled
        assert dif.member_count() == 2
        # both sides see the adjacency
        assert a_ipcp.rmt.neighbors() == [b_ipcp.address]
        assert b_ipcp.rmt.neighbors() == [a_ipcp.address]

    def test_lsdb_and_directory_synced_to_joiner(self):
        network, systems = two_systems()
        dif = Dif("d")
        a_ipcp = systems["a"].create_ipcp(dif)
        a_ipcp.bootstrap()
        from repro.core.names import ApplicationName
        a_ipcp.register_local_app(ApplicationName("pre-existing"),
                                  lambda f: None)
        systems["a"].publish_ipcp("d", shim_between(network, "a", "b"))
        b_ipcp = systems["b"].create_ipcp(dif)
        outcomes = []
        systems["b"].enroll("d", a_ipcp.name, shim_between(network, "a", "b"),
                            done=lambda ok, r: outcomes.append(ok))
        run_until(network, lambda: outcomes, timeout=20)
        assert (b_ipcp.directory.lookup(ApplicationName("pre-existing"))
                == a_ipcp.address)

    def test_enrollment_survives_lossy_medium(self):
        network, systems = two_systems(loss=0.25)
        dif = Dif("d", DifPolicies(mgmt_timeout=0.5, enroll_attempts=8))
        a_ipcp = systems["a"].create_ipcp(dif)
        a_ipcp.bootstrap()
        systems["a"].publish_ipcp("d", shim_between(network, "a", "b"))
        systems["b"].create_ipcp(dif)
        outcomes = []
        systems["b"].enroll("d", a_ipcp.name, shim_between(network, "a", "b"),
                            done=lambda ok, r: outcomes.append((ok, r)))
        run_until(network, lambda: outcomes, timeout=60)
        assert outcomes[0][0], outcomes
        assert dif.member_count() == 2


class TestAuthentication:
    def _try_join(self, member_auth, joiner_auth, seed=1):
        network, systems = two_systems(seed=seed)
        member_dif = Dif("d", DifPolicies(auth=member_auth))
        a_ipcp = systems["a"].create_ipcp(member_dif)
        a_ipcp.bootstrap()
        systems["a"].publish_ipcp("d", shim_between(network, "a", "b"))
        joiner_dif = Dif("d", DifPolicies(auth=joiner_auth))
        systems["b"].create_ipcp(joiner_dif)
        outcomes = []
        systems["b"].enroll("d", a_ipcp.name, shim_between(network, "a", "b"),
                            done=lambda ok, r: outcomes.append((ok, r)))
        run_until(network, lambda: outcomes, timeout=30)
        return member_dif, outcomes[0]

    def test_psk_match_accepted(self):
        dif, (ok, _r) = self._try_join(PresharedKey("k"), PresharedKey("k"))
        assert ok and dif.enrollments_accepted == 1

    def test_psk_mismatch_denied(self):
        dif, (ok, reason) = self._try_join(PresharedKey("k"),
                                           PresharedKey("wrong"))
        assert not ok and reason == "auth-denied"
        assert dif.enrollments_denied == 1
        assert dif.member_count() == 1

    def test_challenge_response_match_accepted(self):
        dif, (ok, _r) = self._try_join(ChallengeResponse("s"),
                                       ChallengeResponse("s"))
        assert ok

    def test_challenge_response_mismatch_denied(self):
        _dif, (ok, reason) = self._try_join(ChallengeResponse("s"),
                                            ChallengeResponse("oops"))
        assert not ok and reason == "auth-denied"

    def test_wrong_dif_name_denied(self):
        network, systems = two_systems()
        real = Dif("real")
        a_ipcp = systems["a"].create_ipcp(real)
        a_ipcp.bootstrap()
        systems["a"].publish_ipcp("real", shim_between(network, "a", "b"))
        imposter = Dif("imposter")
        systems["b"].create_ipcp(imposter)
        # b asks a's IPCP (member of "real") to enroll it into "imposter"
        outcomes = []
        systems["b"].enroll("imposter", a_ipcp.name,
                            shim_between(network, "a", "b"),
                            done=lambda ok, r: outcomes.append((ok, r)))
        run_until(network, lambda: outcomes, timeout=30)
        assert not outcomes[0][0]


class TestMultipleAttachments:
    def test_parallel_links_become_two_ports(self):
        network = Network(seed=1)
        network.add_node("a")
        network.add_node("b")
        network.connect("a", "b", name="l#1")
        network.connect("a", "b", name="l#2")
        systems = make_systems(network)
        add_shims(systems, network)
        dif = Dif("d")
        orchestrator = Orchestrator(network)
        build_dif_over(orchestrator, dif, systems, adjacencies=[
            ("a", "b", shim_name_for("l#1")),
            ("a", "b", shim_name_for("l#2"))])
        orchestrator.run(timeout=30)
        a_ipcp = systems["a"].ipcp("d")
        b_addr = systems["b"].ipcp("d").address
        assert len(a_ipcp.rmt.ports_to(b_addr)) == 2


class TestDeparture:
    def test_leave_withdraws_member_everywhere(self):
        network = Network(seed=1)
        for name in ("a", "b", "c"):
            network.add_node(name)
        network.connect("a", "b")
        network.connect("b", "c")
        systems = make_systems(network)
        add_shims(systems, network)
        dif = Dif("d", DifPolicies(keepalive_interval=0.2))
        orchestrator = Orchestrator(network)
        build_dif_over(orchestrator, dif, systems, adjacencies=[
            ("a", "b", shim_between(network, "a", "b")),
            ("b", "c", shim_between(network, "b", "c"))])
        orchestrator.run(timeout=30)
        c_ipcp = systems["c"].ipcp("d")
        c_addr = c_ipcp.address
        a_ipcp = systems["a"].ipcp("d")
        run_until(network, lambda: a_ipcp.routing.next_hop(c_addr) is not None,
                  timeout=10)
        c_ipcp.leave()
        network.run(until=network.engine.now + 3.0)
        assert dif.member_count() == 2
        assert not c_ipcp.enrolled
        assert a_ipcp.routing.next_hop(c_addr) is None
