"""Live-traffic gateway: real sockets in front of the simulated stack.

End-to-end sessions over loopback TCP and UDP (echo, RPC, pubsub —
flows allocated by application name through the shim handshake),
malformed-input containment at the socket boundary, the open-loop load
harness, and the socket-vs-simulated transcript conformance pin.
"""

import asyncio
import json

import pytest

from repro.gateway.conformance import (SessionSpec, run_simulated_session,
                                       run_socket_session, strip_private,
                                       transcript_fingerprint)
from repro.gateway.load import run_load
from repro.gateway.server import GatewayServer
from repro.gateway.transport import open_tcp_channel, open_udp_channel
from repro.gateway.wire import (LENGTH_PREFIX, MAX_FRAME_BYTES,
                                decode_shim_frame, frame_to_wire,
                                stream_record)

#: Socket and simulated runs of the scripted echo/RPC session must
#: produce byte-identical protocol transcripts.  Captured from the
#: simulated reference (seed 0, quiet policies, SessionSpec defaults);
#: a deliberate protocol change re-captures via
#: ``python -m repro gateway conformance``.
GOLDEN_SESSION_FINGERPRINT = (
    "1aa44266fac11789d0d8d9769cdb55633b2aa4825e0f66a7ad27688e4e94f625")


def run(coro, timeout=60.0):
    async def bounded():
        return await asyncio.wait_for(coro, timeout)
    return asyncio.run(bounded())


async def _with_server(body, **kwargs):
    """Run ``body(server)`` against a started gateway, recording any
    unhandled loop exceptions (there must never be any)."""
    unhandled = []
    asyncio.get_running_loop().set_exception_handler(
        lambda loop, ctx: unhandled.append(ctx))
    server = GatewayServer(**kwargs)
    await server.start()
    try:
        result = await body(server)
    finally:
        await server.stop()
        await asyncio.sleep(0.05)
    assert unhandled == [], unhandled
    return result


class _WireClient:
    """A minimal hand-rolled shim-protocol client for targeted tests."""

    def __init__(self, channel):
        self.channel = channel
        self.frames = []
        self.got_frame = asyncio.Event()
        channel.set_receiver(self._on_bytes)

    def _on_bytes(self, buf):
        self.frames.append(decode_shim_frame(buf))
        self.got_frame.set()

    def send(self, frame):
        assert self.channel.send(frame_to_wire(frame))

    async def expect(self, kind, timeout=5.0):
        deadline = asyncio.get_running_loop().time() + timeout
        while asyncio.get_running_loop().time() < deadline:
            for frame in self.frames:
                if frame[0] == kind:
                    return frame
            self.got_frame.clear()
            try:
                await asyncio.wait_for(self.got_frame.wait(),
                                       deadline -
                                       asyncio.get_running_loop().time())
            except asyncio.TimeoutError:
                break
        raise AssertionError(
            f"no {kind!r} frame arrived; got {self.frames!r}")


class TestSessions:
    @pytest.mark.parametrize("transport", ["tcp", "udp"])
    def test_echo_session(self, transport):
        async def body(server):
            port = server.tcp_port if transport == "tcp" else server.udp_port
            return await run_load("127.0.0.1", port, transport=transport,
                                  clients=5, pings=3, timeout=20.0)
        row = run(_with_server(body))
        assert row["complete"], row
        assert row["replies"] == 15
        assert row["wire_errors"] == 0

    @pytest.mark.parametrize("transport", ["tcp", "udp"])
    def test_rpc_session(self, transport):
        async def body(server):
            port = server.tcp_port if transport == "tcp" else server.udp_port
            return await run_load("127.0.0.1", port, transport=transport,
                                  clients=3, pings=2, workload="rpc",
                                  timeout=20.0)
        row = run(_with_server(body))
        assert row["complete"], row

    def test_pubsub_session(self):
        """Subscriber and publisher on separate TCP connections; the
        broker fans the publication out across sockets."""
        async def body(server):
            sub = _WireClient(await open_tcp_channel("127.0.0.1",
                                                     server.tcp_port))
            pub = _WireClient(await open_tcp_channel("127.0.0.1",
                                                     server.tcp_port))
            from repro.core.delimiting import Fragment

            def message(client, flow_id, obj, mid):
                data = json.dumps(obj).encode()
                fragment = Fragment(mid, 0, True, data)
                client.send(("data", flow_id, fragment,
                             fragment.wire_size()))

            sub.send(("alloc", 2, ("sub", "pubsub-broker"), 16))
            await sub.expect("alloc-ok")
            pub.send(("alloc", 2, ("pub", "pubsub-broker"), 16))
            await pub.expect("alloc-ok")
            message(sub, 2, {"op": "subscribe", "topic": "news"}, 0)
            await asyncio.sleep(0.1)
            message(pub, 2, {"op": "publish", "topic": "news",
                             "data": "hello"}, 0)
            frame = await sub.expect("data")
            event = json.loads(frame[2].data.decode())
            assert event == {"op": "event", "topic": "news", "data": "hello"}
            sub.channel.close()
            pub.channel.close()
        run(_with_server(body))

    def test_unknown_app_is_refused(self):
        async def body(server):
            client = _WireClient(await open_tcp_channel("127.0.0.1",
                                                        server.tcp_port))
            client.send(("alloc", 2, ("x", "no-such-service"), 16))
            frame = await client.expect("alloc-err")
            assert frame[2] == "no-such-app"
            client.channel.close()
        run(_with_server(body))

    def test_each_connection_is_one_facility(self):
        async def body(server):
            first = await open_tcp_channel("127.0.0.1", server.tcp_port)
            second = await open_tcp_channel("127.0.0.1", server.tcp_port)
            for _ in range(100):
                if server.active_connections == 2:
                    break
                await asyncio.sleep(0.01)
            assert server.active_connections == 2
            assert server.stats["tcp_connections"] == 2
            first.close()
            second.close()
            for _ in range(100):
                if server.active_connections == 0:
                    break
                await asyncio.sleep(0.01)
            assert server.active_connections == 0
            assert server.stats["closed"] == 2
        run(_with_server(body))


class TestMalformedInput:
    """Garbage at the socket never hangs a coroutine or leaks an
    unhandled exception — it counts, and the connection closes."""

    def test_tcp_garbage_wire_frame_closes_connection(self):
        async def body(server):
            channel = await open_tcp_channel("127.0.0.1", server.tcp_port)
            closed = asyncio.Event()
            channel.on_close(closed.set)
            assert channel.send(b"\xb7 this is not a frame")
            await asyncio.wait_for(closed.wait(), 5.0)
            assert server.stats["wire_errors"] >= 1
        run(_with_server(body))

    def test_tcp_decodable_non_shim_frame_closes_connection(self):
        async def body(server):
            from repro.core.codec import encode
            from repro.shard.framing import pack_frame
            channel = await open_tcp_channel("127.0.0.1", server.tcp_port)
            closed = asyncio.Event()
            channel.on_close(closed.set)
            assert channel.send(pack_frame(encode(("not", "a", "frame"))))
            await asyncio.wait_for(closed.wait(), 5.0)
            assert server.stats["wire_errors"] >= 1
        run(_with_server(body))

    def test_tcp_oversize_length_prefix_closes_connection(self):
        async def body(server):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.tcp_port)
            writer.write(LENGTH_PREFIX.pack(MAX_FRAME_BYTES + 1) + b"x")
            await writer.drain()
            eof = await asyncio.wait_for(reader.read(), 5.0)
            assert eof == b""   # server hung up cleanly
            writer.close()
            assert server.stats["wire_errors"] >= 1
        run(_with_server(body))

    def test_tcp_truncated_stream_then_disconnect(self):
        """Half a record then FIN: buffered bytes are dropped with the
        connection, nothing raises."""
        async def body(server):
            record = stream_record(frame_to_wire(("alloc", 2, ("a", "b"),
                                                  16)))
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.tcp_port)
            writer.write(record[:len(record) // 2])
            await writer.drain()
            writer.close()
            await writer.wait_closed()
            for _ in range(100):
                if server.stats["closed"] >= 1:
                    break
                await asyncio.sleep(0.01)
            assert server.stats["closed"] >= 1
        run(_with_server(body))

    def test_udp_garbage_datagram_counts_and_serving_continues(self):
        async def body(server):
            bad = await open_udp_channel("127.0.0.1", server.udp_port)
            assert bad.send(b"\x00garbage datagram")
            for _ in range(200):
                if server.stats["wire_errors"] >= 1:
                    break
                await asyncio.sleep(0.01)
            assert server.stats["wire_errors"] >= 1
            # a fresh well-behaved peer is unaffected
            row = await run_load("127.0.0.1", server.udp_port,
                                 transport="udp", clients=2, pings=2,
                                 timeout=15.0)
            assert row["complete"], row
        run(_with_server(body))

    def test_disconnect_mid_session_releases_flows(self):
        async def body(server):
            client = _WireClient(await open_tcp_channel("127.0.0.1",
                                                        server.tcp_port))
            client.send(("alloc", 2, ("c", "echo-server"), 16))
            await client.expect("alloc-ok")
            assert server.active_connections == 1
            client.channel.close()
            for _ in range(100):
                if server.active_connections == 0:
                    break
                await asyncio.sleep(0.01)
            assert server.active_connections == 0
        run(_with_server(body))


class TestLoadHarness:
    def test_multiplexes_clients_over_bounded_connections(self):
        async def body(server):
            return await run_load("127.0.0.1", server.tcp_port,
                                  clients=40, conns=4, pings=2,
                                  timeout=20.0)
        row = run(_with_server(body))
        assert row["complete"], row
        assert row["conns"] == 4
        assert row["clients"] == 40

    def test_rejects_unknown_transport_and_workload(self):
        with pytest.raises(ValueError):
            run(run_load("127.0.0.1", 1, transport="sctp"))
        with pytest.raises(ValueError):
            run(run_load("127.0.0.1", 1, workload="ftp"))

    def test_reports_alloc_failures_against_missing_app(self):
        async def body(server):
            return await run_load("127.0.0.1", server.tcp_port,
                                  clients=2, pings=1,
                                  server_app="nobody-home", timeout=15.0)
        row = run(_with_server(body, apps=("echo",)))
        assert not row["complete"]
        assert row["alloc_failures"] == 2
        assert row["expected"] == 0


class TestConformance:
    """The tentpole pin: a socket-run session produces the *identical*
    protocol transcript — frame kinds, flow-allocation sequence, RIEP
    exchanges, payload encodings, per-direction order — as the
    simulated run of the same spec."""

    def test_socket_transcript_equals_simulated(self):
        spec = SessionSpec()
        simulated = strip_private(run_simulated_session(spec))
        socketed = strip_private(run_socket_session(spec))
        assert simulated == socketed
        assert (transcript_fingerprint(simulated)
                == transcript_fingerprint(socketed))

    def test_simulated_fingerprint_is_golden(self):
        transcript = strip_private(run_simulated_session())
        assert (transcript_fingerprint(transcript)
                == GOLDEN_SESSION_FINGERPRINT)

    def test_socket_fingerprint_is_golden(self):
        transcript = strip_private(run_socket_session())
        assert (transcript_fingerprint(transcript)
                == GOLDEN_SESSION_FINGERPRINT)

    def test_transcript_covers_the_protocol(self):
        """The pinned transcript actually exercises the protocol: both
        allocation handshakes, RIEP enrollment traffic, data both ways."""
        transcript = strip_private(run_simulated_session())
        kinds_c2s = [frame[0] for frame in transcript["c2s"]]
        kinds_s2c = [frame[0] for frame in transcript["s2c"]]
        assert "alloc" in kinds_c2s
        assert "alloc-ok" in kinds_s2c
        assert "data" in kinds_c2s and "data" in kinds_s2c
        # app-flow deallocation is DIF-internal (EFCP teardown rides in
        # data frames); the shim flow carrying the DIF stays up, so no
        # shim-level dealloc appears — RIEP enrollment does, inside
        # ManagementPdus ("PM")
        flat = repr(transcript)
        assert "'PM'" in flat and "'R'" in flat
