"""Scenario harness: spec validation, generator coverage, fault-injector
behavior, and the determinism contract (same seed + same spec ⇒
byte-identical trace and metrics)."""

import json
import math

import pytest

from repro.scenarios import (CANNED, FAULT_KINDS, FaultSpec, LayerSpec,
                             Scenario, ScenarioRunner, SpecError,
                             TopologySpec, WorkloadSpec, canned, fault_storm,
                             generate_scenario, generate_specs)

SEED = 7
GENERATED = generate_specs(SEED, 20)


def _chain_scenario(count=3, faults=(), duration=8.0, workloads=None):
    return Scenario(
        name="t-chain",
        topology=TopologySpec(family="chain", params={"count": count}),
        workloads=workloads or [
            WorkloadSpec(kind="echo", client="n0", server=f"n{count - 1}",
                         period=0.05, count=100, start=1.0)],
        faults=list(faults),
        duration=duration)


class TestSpec:
    def test_round_trips_through_dict(self):
        for make in CANNED.values():
            spec = make()
            clone = Scenario.from_dict(
                json.loads(json.dumps(spec.to_dict())))
            assert clone.to_dict() == spec.to_dict()

    def test_generated_specs_round_trip(self):
        for spec in GENERATED[:5]:
            clone = Scenario.from_dict(
                json.loads(json.dumps(spec.to_dict())))
            assert clone.to_dict() == spec.to_dict()

    def test_unknown_family_rejected(self):
        with pytest.raises(SpecError):
            TopologySpec(family="torus").validate()

    def test_unknown_fault_kind_rejected(self):
        with pytest.raises(SpecError):
            FaultSpec(kind="meteor", target="n0--n1").validate()

    def test_partition_target_must_be_group(self):
        with pytest.raises(SpecError):
            FaultSpec(kind="partition", target="n0").validate()

    def test_workload_endpoint_must_exist(self):
        scenario = _chain_scenario()
        scenario.workloads[0].server = "nope"
        with pytest.raises(SpecError):
            ScenarioRunner(scenario).run("rina")

    def test_scenario_needs_a_workload(self):
        with pytest.raises(SpecError):
            Scenario(workloads=[]).validate()


class TestGenerator:
    def test_batch_covers_every_injector(self):
        kinds = {fault.kind for spec in GENERATED for fault in spec.faults}
        assert kinds == set(FAULT_KINDS)

    def test_same_seed_same_specs(self):
        again = generate_specs(SEED, 20)
        assert [s.to_dict() for s in again] == [s.to_dict()
                                               for s in GENERATED]

    def test_different_seeds_differ(self):
        other = generate_specs(SEED + 1, 5)
        assert ([s.to_dict() for s in other]
                != [s.to_dict() for s in GENERATED[:5]])

    def test_generated_specs_are_valid_and_frozen(self):
        for spec in GENERATED:
            assert spec.topology.family == "explicit"
            spec.validate(spec.topology.nodes)

    def test_crash_targets_avoid_workload_endpoints(self):
        for spec in GENERATED:
            endpoints = {w.client for w in spec.workloads} | {
                w.server for w in spec.workloads}
            for fault in spec.faults:
                if fault.kind == "node-crash":
                    assert fault.target not in endpoints


class TestDeterminism:
    """Same seed + same spec ⇒ byte-identical trace and metrics, for 20
    generator-sampled specs covering every fault injector."""

    @pytest.mark.parametrize("index", range(len(GENERATED)),
                             ids=[s.name for s in GENERATED])
    def test_rina_trace_is_reproducible(self, index):
        spec = GENERATED[index]
        first = ScenarioRunner(spec, seed=SEED)
        metrics_a = first.run("rina")
        second = ScenarioRunner(spec, seed=SEED)
        metrics_b = second.run("rina")
        assert metrics_a == metrics_b
        assert first.trace == second.trace

    @pytest.mark.parametrize("index", range(0, len(GENERATED), 7))
    def test_ip_trace_is_reproducible(self, index):
        spec = GENERATED[index]
        first = ScenarioRunner(spec, seed=SEED)
        metrics_a = first.run("ip")
        second = ScenarioRunner(spec, seed=SEED)
        metrics_b = second.run("ip")
        assert metrics_a == metrics_b
        assert first.trace == second.trace

    def test_different_seed_changes_the_trace(self):
        spec = fault_storm()
        first = ScenarioRunner(spec, seed=1)
        first.run("rina")
        second = ScenarioRunner(spec, seed=2)
        second.run("rina")
        assert first.trace != second.trace


class TestFaultInjectors:
    def test_link_flap_outage_then_recovery(self):
        fault = FaultSpec(kind="link-flap", target="n0--n1", at=2.0,
                          duration=1.0)
        runner = ScenarioRunner(_chain_scenario(faults=[fault]), seed=SEED)
        metrics = runner.run("rina")
        outage = metrics["outages"][fault.label()]
        assert outage >= 0.5                       # the hole is visible
        assert metrics["echo_delivered"] == 100    # reliable flow recovers

    def test_link_degrade_restores_the_original_medium(self):
        fault = FaultSpec(kind="link-degrade", target="n0--n1", at=2.0,
                          duration=1.0, peak_loss=0.8, delay_factor=4.0)
        scenario = _chain_scenario(faults=[fault])
        runner = ScenarioRunner(scenario, seed=SEED)
        metrics = runner.run("rina")
        link = runner.network.link_between("n0", "n1")
        from repro.sim.link import NoLoss
        assert isinstance(link.loss, NoLoss)       # originals restored
        assert link.delay == pytest.approx(0.001)
        phases = [f for _t, kind, f in runner.network.tracer.events("fault")
                  if f.get("fault") == "link-degrade"]
        assert any(p["phase"] == "restored" for p in phases)
        assert metrics["echo_delivered"] == 100

    def test_node_crash_reenrolls_through_the_join_protocol(self):
        fault = FaultSpec(kind="node-crash", target="n1", at=2.0,
                          duration=1.0)
        runner = ScenarioRunner(_chain_scenario(faults=[fault]), seed=SEED)
        metrics = runner.run("rina")
        tracer = runner.network.tracer
        assert tracer.counter_value("ipcp.crash") == 1
        assert tracer.events("fault.reenrolled")
        # the relay rejoined: an 'enrolled' event strictly after restart
        restart_at = [t for t, _k, f in tracer.events("fault")
                      if f["phase"] == "restart"][0]
        rejoined = [t for t, _k, f in tracer.events("enrolled")
                    if f["ipcp"] == "net.ipcp.n1" and t > restart_at]
        assert rejoined
        # traffic flows again after the rejoin
        assert metrics["echo_delivered"] >= 60

    def test_partition_outage_spans_the_split(self):
        fault = FaultSpec(kind="partition", target=["n2"], at=2.0,
                          duration=1.2)
        runner = ScenarioRunner(_chain_scenario(faults=[fault]), seed=SEED)
        metrics = runner.run("rina")
        assert metrics["outages"][fault.label()] >= 1.0
        assert metrics["echo_delivered"] == 100    # heals, EFCP recovers

    def test_congestion_slows_the_transfer(self):
        workloads = [WorkloadSpec(kind="transfer", client="n0", server="n2",
                                  bytes=400_000, start=0.5)]
        base = _chain_scenario(duration=4.0, workloads=workloads)
        base.topology.link = {"capacity_bps": 2e6}
        congested = _chain_scenario(
            duration=4.0, workloads=[WorkloadSpec(**vars(workloads[0]))],
            faults=[FaultSpec(kind="congestion", target="n1--n2", at=0.5,
                              duration=3.0, capacity_factor=10.0)])
        congested.topology.link = {"capacity_bps": 2e6}
        clear_bytes = ScenarioRunner(base, seed=SEED).run(
            "rina")["transfer_bytes"]
        slow_bytes = ScenarioRunner(congested, seed=SEED).run(
            "rina")["transfer_bytes"]
        assert 0 < slow_bytes < clear_bytes

    def test_unknown_link_target_rejected(self):
        fault = FaultSpec(kind="link-flap", target="nowhere", at=1.0)
        with pytest.raises(SpecError):
            ScenarioRunner(_chain_scenario(faults=[fault]),
                           seed=SEED).run("rina")

    def test_partition_cuts_parallel_links(self):
        # regression: the cut must be computed over the links themselves,
        # not a simple graph that collapses multi-edges — with parallel
        # uplinks a one-link "partition" never partitions
        from repro.scenarios import LinkSpec
        topology = TopologySpec(
            family="explicit", nodes=["h", "p"],
            links=[LinkSpec("h", "p", name="uplink#a"),
                   LinkSpec("h", "p", name="uplink#b")])
        fault = FaultSpec(kind="partition", target=["h"], at=1.0,
                          duration=0.8)
        scenario = Scenario(
            name="t-parallel", topology=topology, dif_depth=1,
            workloads=[WorkloadSpec(kind="echo", client="h", server="p",
                                    count=40, start=0.5)],
            faults=[fault], duration=5.0)
        runner = ScenarioRunner(scenario, seed=SEED)
        metrics = runner.run("rina")
        for name in ("uplink#a", "uplink#b"):
            assert runner.network.links[name].up   # healed afterwards
        assert metrics["outages"][fault.label()] >= 0.7
        assert metrics["echo_delivered"] == 40

    def test_overlapping_faults_share_link_down_state(self):
        # regression: a partition healing mid-flap must not repair a link
        # another injector still holds down (refcounted down-state)
        from repro.scenarios import FaultContext, make_injector
        from repro.scenarios.runner import build_topology
        from repro.sim.network import Network
        network = Network(seed=1)
        build_topology(TopologySpec(family="chain", params={"count": 3}),
                       network)
        ctx = FaultContext(network)
        make_injector(FaultSpec(kind="link-flap", target="n1--n2", at=1.0,
                                duration=2.0)).arm(ctx, 0.0)
        make_injector(FaultSpec(kind="partition", target=["n2"], at=1.5,
                                duration=0.5)).arm(ctx, 0.0)
        link = network.link_between("n1", "n2")
        network.run(until=2.5)
        assert not link.up      # partition healed, flap still holds
        network.run(until=3.5)
        assert link.up          # last hold released

    def test_outage_is_per_workload_not_merged(self):
        # regression: steady traffic on an unaffected workload must not
        # mask the outage a fault inflicts on another workload's path
        scenario = Scenario(
            name="t-mask",
            topology=TopologySpec(family="chain", params={"count": 4}),
            workloads=[WorkloadSpec(kind="echo", client="n0", server="n1",
                                    count=100),
                       WorkloadSpec(kind="echo", client="n2", server="n3",
                                    count=100)],
            faults=[FaultSpec(kind="link-flap", target="n2--n3", at=1.5,
                              duration=1.0)],
            duration=8.0)
        metrics = ScenarioRunner(scenario, seed=SEED).run("rina")
        assert metrics["worst_outage_s"] >= 0.5

    def test_crashed_node_ghost_flows_cannot_enter_the_dif(self):
        # regression: PDUs arriving on a flow the crashed IPCP no longer
        # owns must be dropped before the security gate, not relayed
        fault = FaultSpec(kind="node-crash", target="n1", at=2.0,
                          duration=1.0)
        runner = ScenarioRunner(_chain_scenario(faults=[fault]), seed=SEED)
        runner.run("rina")
        tracer = runner.network.tracer
        assert tracer.counter_value("security.ghost-port-pdu") > 0

    def test_auto_layers_span_custom_named_links(self):
        # regression: dif_depth-derived layers must cover links whose
        # names don't follow the canonical a--b#seq pattern
        from repro.scenarios import LinkSpec
        topology = TopologySpec(
            family="explicit", nodes=["h", "p"],
            links=[LinkSpec("h", "p", name="radio:alpha"),
                   LinkSpec("h", "p", name="radio:beta")])
        scenario = Scenario(
            name="t-named", topology=topology, dif_depth=2,
            workloads=[WorkloadSpec(kind="echo", client="h", server="p",
                                    count=30, start=0.5)],
            duration=4.0)
        metrics = ScenarioRunner(scenario, seed=SEED).run("rina")
        assert metrics["echo_delivered"] == 30


class TestConditionInjectors:
    """The four network-condition windows: jitter-storm,
    bandwidth-squeeze, corruption-storm, reorder-burst."""

    def test_bandwidth_squeeze_slows_the_transfer(self):
        workloads = [WorkloadSpec(kind="transfer", client="n0", server="n2",
                                  bytes=400_000, start=0.5)]
        base = _chain_scenario(duration=4.0, workloads=workloads)
        base.topology.link = {"capacity_bps": 2e7}
        squeezed = _chain_scenario(
            duration=4.0, workloads=[WorkloadSpec(**vars(workloads[0]))],
            faults=[FaultSpec(kind="bandwidth-squeeze", target="n1--n2",
                              at=0.4, duration=3.5, rate_bps=5e5)])
        squeezed.topology.link = {"capacity_bps": 2e7}
        clear_bytes = ScenarioRunner(base, seed=SEED).run(
            "rina")["transfer_bytes"]
        slow_bytes = ScenarioRunner(squeezed, seed=SEED).run(
            "rina")["transfer_bytes"]
        assert 0 < slow_bytes < clear_bytes

    def test_condition_windows_restore_the_original_bundle(self):
        faults = [FaultSpec(kind="jitter-storm", target="n0--n1", at=1.5,
                            duration=1.0, jitter_s=0.004),
                  FaultSpec(kind="reorder-burst", target="n1--n2", at=1.5,
                            duration=1.0)]
        runner = ScenarioRunner(_chain_scenario(faults=faults), seed=SEED)
        metrics = runner.run("rina")
        # the links started clean; after the windows they must be again
        assert runner.network.link_between("n0", "n1").conditions is None
        assert runner.network.link_between("n1", "n2").conditions is None
        assert metrics["echo_delivered"] == 100

    def test_corruption_counter_surfaces_in_the_trace(self):
        fault = FaultSpec(kind="corruption-storm", target="n0--n1", at=1.5,
                          duration=2.0, corrupt_prob=0.3)
        runner = ScenarioRunner(_chain_scenario(faults=[fault]), seed=SEED)
        metrics = runner.run("rina")
        tracer = runner.network.tracer
        assert tracer.counter_value("link.corrupted") > 0
        # ...but detection + retransmission keep the reliable flow whole
        assert metrics["echo_delivered"] == 100

    def test_reorder_burst_masked_by_sequencing(self):
        fault = FaultSpec(kind="reorder-burst", target="n0--n1", at=1.5,
                          duration=3.0, reorder_prob=0.4, reorder_depth=4)
        runner = ScenarioRunner(_chain_scenario(faults=[fault]), seed=SEED)
        metrics = runner.run("rina")
        assert metrics["echo_delivered"] == 100

    def test_invalid_condition_fault_parameters_rejected(self):
        with pytest.raises(SpecError):
            FaultSpec(kind="jitter-storm", target="l", jitter_s=-1).validate()
        with pytest.raises(SpecError):
            FaultSpec(kind="jitter-storm", target="l",
                      jitter_model="pareto").validate()
        with pytest.raises(SpecError):
            FaultSpec(kind="bandwidth-squeeze", target="l",
                      rate_bps=0).validate()
        with pytest.raises(SpecError):
            FaultSpec(kind="corruption-storm", target="l",
                      corrupt_prob=1.5).validate()
        with pytest.raises(SpecError):
            FaultSpec(kind="reorder-burst", target="l",
                      reorder_depth=0).validate()


class TestStaticLinkConditions:
    """Conditions as static link configuration: an explicit LinkSpec's
    jitter/shaper/corruption/reorder slots and a builder family's
    ``link={...}`` both flow into ``Network.connect(conditions=...)``."""

    def test_explicit_linkspec_conditions(self):
        from repro.scenarios import LinkSpec
        topology = TopologySpec(
            family="explicit", nodes=["a", "b"],
            links=[LinkSpec("a", "b", capacity_bps=1e8,
                            jitter={"model": "uniform", "amplitude": 0.002},
                            shaper={"rate_bps": 5e6})])
        scenario = Scenario(
            name="t-static", topology=topology, dif_depth=1,
            workloads=[WorkloadSpec(kind="echo", client="a", server="b",
                                    count=40, start=0.5)],
            duration=5.0)
        runner = ScenarioRunner(scenario, seed=SEED)
        metrics = runner.run("rina")
        link = runner.network.link_between("a", "b")
        assert link.conditions is not None
        assert link.conditions.jitter is not None
        assert link.conditions.shaper.rate_bps == 5e6
        assert metrics["echo_delivered"] == 40

    def test_builder_family_link_conditions(self):
        scenario = _chain_scenario()
        scenario.topology.link = {
            "capacity_bps": 1e8,
            "jitter": {"model": "normal", "mean": 0.002, "stddev": 0.001}}
        runner = ScenarioRunner(scenario, seed=SEED)
        metrics = runner.run("rina")
        for link in runner.network.links.values():
            assert link.conditions is not None
        assert metrics["echo_delivered"] == 100

    def test_static_conditions_round_trip_through_dict(self):
        from repro.scenarios import LinkSpec
        topology = TopologySpec(
            family="explicit", nodes=["a", "b"],
            links=[LinkSpec("a", "b",
                            corruption={"probability": 0.1},
                            reorder={"probability": 0.2, "depth": 3})])
        scenario = Scenario(
            name="t-roundtrip", topology=topology, dif_depth=1,
            workloads=[WorkloadSpec(kind="echo", client="a", server="b",
                                    count=10)],
            duration=3.0)
        clone = Scenario.from_dict(json.loads(json.dumps(
            scenario.to_dict())))
        assert clone.to_dict() == scenario.to_dict()


class TestConditionFamilies:
    """The condition-model canned corpus: flash-crowd, diurnal-load,
    rolling-degradation, corruption-storm.  Seed-0 rina byte-stability is
    pinned in tests/test_trace_golden.py; here the IP baseline side of
    the dual-stack contract plus family-specific behavior."""

    NAMES = ("flash-crowd", "diurnal-load", "rolling-degradation",
             "corruption-storm")

    @pytest.mark.parametrize("name", NAMES)
    def test_ip_trace_is_reproducible(self, name):
        spec = CANNED[name]()
        first = ScenarioRunner(spec, seed=SEED)
        metrics_a = first.run("ip")
        second = ScenarioRunner(spec, seed=SEED)
        metrics_b = second.run("ip")
        assert metrics_a == metrics_b
        assert first.trace == second.trace

    def test_corruption_storm_rina_recovers_ip_leaks(self):
        rows = {}
        for stack in ("rina", "ip"):
            rows[stack] = ScenarioRunner(CANNED["corruption-storm"](),
                                         seed=SEED).run(stack)
        # reliable EFCP flows retransmit through the bit errors; the
        # baseline's UDP echo probes silently lose the damaged frames
        assert rows["rina"]["echo_delivered"] == rows["rina"]["echo_sent"]
        assert rows["ip"]["echo_delivered"] < rows["ip"]["echo_sent"]

    def test_flash_crowd_transfer_completes_through_the_squeeze(self):
        metrics = ScenarioRunner(CANNED["flash-crowd"](),
                                 seed=SEED).run("rina")
        assert metrics["transfers_completed"] == 1
        assert metrics["echo_delivered"] == metrics["echo_sent"]


class TestDualStack:
    def test_fault_storm_runs_on_both_stacks(self):
        rows = {}
        for stack in ("rina", "ip"):
            runner = ScenarioRunner(fault_storm(), seed=SEED)
            rows[stack] = runner.run(stack)
        for stack, metrics in rows.items():
            assert metrics["stack"] == stack
            assert metrics["transfers_completed"] == 1
            assert set(metrics["outages"]) == {
                f.label() for f in fault_storm().faults}
        # the recursive stack's reliable flows ride out the storm; the
        # baseline's UDP probes do not
        assert rows["rina"]["echo_delivered"] == 160
        assert rows["ip"]["echo_delivered"] < 160

    def test_stream_workload_reports_latency(self):
        scenario = _chain_scenario(workloads=[
            WorkloadSpec(kind="stream", client="n0", server="n2",
                         period=0.05, size=300, start=1.0)], duration=4.0)
        for stack in ("rina", "ip"):
            metrics = ScenarioRunner(scenario, seed=SEED).run(stack)
            assert metrics["stream_received"] > 20
            assert metrics["stream_delay_p95_ms"] > 0

    def test_layered_stack_depth_two(self):
        scenario = _chain_scenario(duration=6.0)
        scenario.dif_depth = 2
        metrics = ScenarioRunner(scenario, seed=SEED).run("rina")
        assert metrics["echo_delivered"] == 100


class TestCannedE345:
    """The E3/E4/E5 stacks are now built from canned scenario specs; the
    experiment modules must still produce their published shapes (the
    deeper assertions live in tests/test_experiments.py)."""

    def test_e3_spec_builds_both_configs(self):
        from repro.experiments.e3_scoped_recovery import build_scenario
        from repro.sim.link import UniformLoss
        for config in ("e2e", "scoped"):
            network, systems, knob = build_scenario(config, seed=1)
            assert isinstance(knob, UniformLoss)
            difs = set()
            for system in systems.values():
                difs.update(str(n) for n in system.provider_names()
                            if not str(n).startswith("shim:"))
            assert ("wifi" in difs) == (config == "scoped")

    def test_e4_spec_reproduces_failover(self):
        from repro.experiments.e4_multihoming import run_rina
        row = run_rina(keepalive_interval=0.2, seed=1)
        assert row["survived"]
        assert row["outage_s"] <= row["detection_budget_s"] + 0.5

    def test_e5_spec_builds_three_layer_stack(self):
        from repro.experiments.e5_mobility import RinaMobilityScenario
        scenario = RinaMobilityScenario(seed=1)
        assert {str(d.name) for d in (scenario.region1, scenario.region2,
                                      scenario.metro)} \
            == {"region1", "region2", "metro"}
        assert scenario.metro.member_count() == 5

    def test_canned_registry_runs_standalone(self):
        metrics = ScenarioRunner(canned("e4-multihoming"),
                                 seed=SEED).run("rina")
        assert metrics["echo_delivered"] == 120


class TestCli:
    def test_list_and_run(self, capsys):
        from repro.__main__ import main
        assert main(["scenarios", "list"]) == 0
        out = capsys.readouterr().out
        assert "fault-storm" in out

    def test_run_generated_spec(self, capsys):
        from repro.__main__ import main
        assert main(["scenarios", "run", "--seed", "3", "--stack", "rina",
                     "gen:1"]) == 0
        out = capsys.readouterr().out
        assert "byte-identical" in out

    def test_run_json_spec(self, tmp_path, capsys):
        from repro.__main__ import main
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(_chain_scenario(duration=3.0).to_dict()))
        assert main(["scenarios", "run", "--stack", "rina",
                     str(path)]) == 0

    def test_unknown_canned_name_rejected(self, capsys):
        from repro.__main__ import main
        assert main(["scenarios", "run", "no-such-scenario"]) == 2
