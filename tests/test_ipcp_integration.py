"""Integration tests for IPCP behaviours: relaying, liveness, security gate,
reliable flooding, recursion."""

import pytest

from repro.core import (Dif, DifPolicies, FlowWaiter, MessageFlow,
                        Orchestrator, add_shims, build_dif_over, make_systems,
                        run_until, shim_between, shim_name_for)
from repro.core.names import Address, ApplicationName
from repro.core.pdu import DataPdu
from repro.core.qos import RELIABLE
from repro.sim.link import UniformLoss
from repro.sim.network import Network


def chain(n=3, seed=1, policies=None, loss=None):
    network = Network(seed=seed)
    names = [f"s{i}" for i in range(n)]
    for name in names:
        network.add_node(name)
    for left, right in zip(names, names[1:]):
        network.connect(left, right, loss=loss)
    systems = make_systems(network)
    add_shims(systems, network)
    dif = Dif("d", policies or DifPolicies(keepalive_interval=0.2))
    orchestrator = Orchestrator(network)
    build_dif_over(orchestrator, dif, systems, adjacencies=[
        (a, b, shim_between(network, a, b))
        for a, b in zip(names, names[1:])])
    orchestrator.run(timeout=60)
    return network, systems, dif, names


class TestRelaying:
    def test_middle_system_relays_without_flow_state(self):
        network, systems, _dif, names = chain(3)
        inbound = []
        systems["s2"].register_app(ApplicationName("svc"), inbound.append)
        network.run(until=network.engine.now + 0.5)
        flow = systems["s0"].allocate_flow(ApplicationName("cli"),
                                           ApplicationName("svc"),
                                           qos=RELIABLE)
        waiter = FlowWaiter(flow)
        run_until(network, waiter.done, timeout=15)
        assert waiter.ok
        mf = MessageFlow(network.engine, flow)
        mf.send_message(b"through the middle")
        got = []
        inbound_mf = MessageFlow(network.engine, inbound[0])
        inbound_mf.set_message_receiver(got.append)
        run_until(network, lambda: got, timeout=15)
        middle = systems["s1"].ipcp("d")
        assert middle.rmt.pdus_relayed > 0
        assert middle.flow_allocator.active_flow_count() == 0

    def test_five_hop_chain_delivers(self):
        network, systems, _dif, names = chain(5)
        inbound = []
        systems[names[-1]].register_app(ApplicationName("svc"), inbound.append)
        network.run(until=network.engine.now + 1.0)
        flow = systems[names[0]].allocate_flow(ApplicationName("cli"),
                                               ApplicationName("svc"),
                                               qos=RELIABLE)
        waiter = FlowWaiter(flow)
        run_until(network, waiter.done, timeout=20)
        assert waiter.ok


class TestNeighborLiveness:
    def test_dead_link_detected_and_routed_around(self):
        # square: s0-s1-s2 and s0-s3-s2
        network = Network(seed=2)
        for name in ("s0", "s1", "s2", "s3"):
            network.add_node(name)
        network.connect("s0", "s1")
        network.connect("s1", "s2")
        network.connect("s0", "s3")
        network.connect("s3", "s2")
        systems = make_systems(network)
        add_shims(systems, network)
        dif = Dif("d", DifPolicies(keepalive_interval=0.1, dead_factor=3))
        orchestrator = Orchestrator(network)
        build_dif_over(orchestrator, dif, systems, adjacencies=[
            ("s0", "s1", shim_between(network, "s0", "s1")),
            ("s1", "s2", shim_between(network, "s1", "s2")),
            ("s0", "s3", shim_between(network, "s0", "s3")),
            ("s3", "s2", shim_between(network, "s3", "s2"))])
        orchestrator.run(timeout=60)
        s0 = systems["s0"].ipcp("d")
        s2_addr = systems["s2"].ipcp("d").address
        s1_addr = systems["s1"].ipcp("d").address
        run_until(network, lambda: s0.routing.next_hop(s2_addr) is not None,
                  timeout=10)
        network.link_between("s0", "s1").fail()
        s3_addr = systems["s3"].ipcp("d").address
        ok = run_until(network,
                       lambda: s0.routing.next_hop(s2_addr) == s3_addr,
                       timeout=10)
        assert ok

    def test_repaired_link_revives_neighbor(self):
        network, systems, _dif, names = chain(2)
        link = network.link_between("s0", "s1")
        s0 = systems["s0"].ipcp("d")
        s1_addr = systems["s1"].ipcp("d").address
        link.fail()
        run_until(network, lambda: s0.routing.next_hop(s1_addr) is None,
                  timeout=10)
        link.repair()
        ok = run_until(network,
                       lambda: s0.routing.next_hop(s1_addr) == s1_addr,
                       timeout=10)
        assert ok


class TestSecurityGate:
    def test_unauthenticated_port_cannot_inject_data(self):
        network, systems, dif, _names = chain(2)
        # a raw shim flow to s1's IPCP, never enrolled
        from repro.core.names import DifName
        shim = systems["s0"].provider(shim_between(network, "s0", "s1"))
        rogue_flow = shim.allocate_flow(ApplicationName("rogue"),
                                        systems["s1"].ipcp("d").name)
        run_until(network, lambda: rogue_flow.allocated, timeout=10)
        before = network.tracer.counter_value("security.unauthenticated-pdu")
        pdu = DataPdu(Address(66), systems["s1"].ipcp("d").address,
                      1, 1, 0, b"inject", 6)
        rogue_flow.send(pdu, pdu.wire_size())
        network.run(until=network.engine.now + 1.0)
        after = network.tracer.counter_value("security.unauthenticated-pdu")
        assert after == before + 1

    def test_enrollment_messages_pass_the_gate(self):
        # the gate must not break enrollment itself: covered by any chain
        network, systems, dif, _names = chain(2)
        assert dif.member_count() == 2


class TestReliableFlooding:
    def test_directory_converges_under_heavy_loss(self):
        network, systems, _dif, names = chain(
            2, loss=UniformLoss(0.3),
            policies=DifPolicies(keepalive_interval=0.5, dead_factor=10,
                                 flood_attempts=8, flood_ack_timeout=0.2,
                                 mgmt_timeout=1.0, enroll_attempts=10))
        app = ApplicationName("svc")
        systems["s1"].register_app(app, lambda f: None)
        s0 = systems["s0"].ipcp("d")
        ok = run_until(network, lambda: s0.directory.lookup(app) is not None,
                       timeout=30)
        assert ok

    def test_flood_retransmissions_recorded(self):
        network, systems, _dif, names = chain(
            2, loss=UniformLoss(0.4),
            policies=DifPolicies(flood_attempts=6, flood_ack_timeout=0.2,
                                 keepalive_interval=0.5, dead_factor=10,
                                 enroll_attempts=10, mgmt_timeout=1.0))
        systems["s1"].register_app(ApplicationName("x"), lambda f: None)
        network.run(until=network.engine.now + 5.0)
        assert network.tracer.counter_value("mgmt.flood-retx") > 0


class TestRecursion:
    def test_three_level_stack_carries_data(self):
        network = Network(seed=3)
        for name in ("h1", "r", "h2"):
            network.add_node(name)
        network.connect("h1", "r")
        network.connect("r", "h2")
        systems = make_systems(network)
        add_shims(systems, network)
        orchestrator = Orchestrator(network)
        level1 = Dif("level1", DifPolicies(keepalive_interval=1.0))
        build_dif_over(orchestrator, level1, systems, adjacencies=[
            ("h1", "r", shim_between(network, "h1", "r")),
            ("r", "h2", shim_between(network, "r", "h2"))])
        level2 = Dif("level2", DifPolicies(keepalive_interval=1.0))
        build_dif_over(orchestrator, level2, systems, adjacencies=[
            ("h1", "h2", "level1")])
        level3 = Dif("level3", DifPolicies(keepalive_interval=1.0))
        build_dif_over(orchestrator, level3, systems, adjacencies=[
            ("h1", "h2", "level2")])
        orchestrator.run(timeout=120)
        assert level3.member_count() == 2
        inbound = []
        systems["h2"].register_app(ApplicationName("svc"), inbound.append,
                                   dif_names=["level3"])
        network.run(until=network.engine.now + 1.0)
        flow = systems["h1"].allocate_flow(ApplicationName("cli"),
                                           ApplicationName("svc"),
                                           qos=RELIABLE, dif_name="level3")
        waiter = FlowWaiter(flow)
        run_until(network, waiter.done, timeout=20)
        assert waiter.ok
        got = []
        mf = MessageFlow(network.engine, flow)
        inbound_mf = MessageFlow(network.engine, inbound[0])
        inbound_mf.set_message_receiver(got.append)
        mf.send_message(b"three layers deep")
        run_until(network, lambda: got, timeout=20)
        assert got == [b"three layers deep"]
        # every layer's PDUs really crossed the level-1 relay
        assert systems["r"].ipcp("level1").rmt.pdus_relayed > 0
