"""Unit tests for topology construction."""

import networkx as nx
import pytest

from repro.sim.network import Network


class TestNodesAndLinks:
    def test_add_and_lookup_node(self):
        network = Network()
        network.add_node("a")
        assert network.node("a").name == "a"

    def test_duplicate_node_rejected(self):
        network = Network()
        network.add_node("a")
        with pytest.raises(ValueError):
            network.add_node("a")

    def test_connect_plugs_both_interfaces(self):
        network = Network()
        network.add_node("a")
        network.add_node("b")
        link = network.connect("a", "b")
        assert network.node("a").interface_count() == 1
        assert network.node("b").interface_count() == 1
        assert network.node("a").interface("if0").link is link

    def test_duplicate_link_name_rejected(self):
        network = Network()
        network.add_node("a")
        network.add_node("b")
        network.connect("a", "b", name="l")
        with pytest.raises(ValueError):
            network.connect("a", "b", name="l")

    def test_link_between_finds_either_order(self):
        network = Network()
        network.add_node("a")
        network.add_node("b")
        link = network.connect("a", "b")
        assert network.link_between("a", "b") is link
        assert network.link_between("b", "a") is link

    def test_link_between_missing_raises(self):
        network = Network()
        network.add_node("a")
        network.add_node("b")
        with pytest.raises(KeyError):
            network.link_between("a", "b")

    def test_wireless_flag_builds_wireless_link(self):
        from repro.sim.link import WirelessLink
        network = Network()
        network.add_node("a")
        network.add_node("b")
        link = network.connect("a", "b", wireless=True)
        assert isinstance(link, WirelessLink)

    def test_run_delegates_to_engine(self):
        network = Network()
        seen = []
        network.engine.call_at(1.0, lambda: seen.append(True))
        network.run(until=2.0)
        assert seen == [True]


class TestBuilders:
    def test_chain(self):
        network = Network()
        names = network.build_chain(4)
        assert names == ["n0", "n1", "n2", "n3"]
        assert len(network.links) == 3

    def test_chain_single_node(self):
        network = Network()
        assert network.build_chain(1) == ["n0"]
        assert len(network.links) == 0

    def test_chain_validates_count(self):
        with pytest.raises(ValueError):
            Network().build_chain(0)

    def test_star(self):
        network = Network()
        hub, leaves = network.build_star(5)
        assert hub == "hub"
        assert len(leaves) == 5
        assert len(network.links) == 5
        assert network.node("hub").interface_count() == 5

    def test_tree_node_count(self):
        network = Network()
        names = network.build_tree(depth=2, arity=2)
        assert len(names) == 1 + 2 + 4
        assert len(network.links) == 6

    def test_tree_names_encode_paths(self):
        network = Network()
        names = network.build_tree(depth=1, arity=3, prefix="x")
        assert "x" in names and "x.0" in names and "x.2" in names

    def test_tree_validates(self):
        with pytest.raises(ValueError):
            Network().build_tree(depth=-1, arity=2)

    def test_grid_dimensions_and_edges(self):
        network = Network()
        matrix = network.build_grid(3, 4)
        assert len(matrix) == 3 and len(matrix[0]) == 4
        # 3*3 horizontal + 2*4 vertical = 17
        assert len(network.links) == 3 * 3 + 2 * 4

    def test_grid_validates(self):
        with pytest.raises(ValueError):
            Network().build_grid(0, 3)

    def test_random_graph_connected(self):
        network = Network(seed=11)
        names = network.build_random(20, edge_factor=1.5)
        graph = network.graph()
        assert nx.is_connected(graph)
        assert set(names) == set(graph.nodes)

    def test_random_graph_deterministic_per_seed(self):
        first = Network(seed=3)
        first.build_random(10)
        second = Network(seed=3)
        second.build_random(10)
        assert sorted(first.links) == sorted(second.links)


class TestGraphView:
    def test_graph_mirrors_topology(self):
        network = Network()
        network.build_chain(3)
        graph = network.graph()
        assert set(graph.nodes) == {"n0", "n1", "n2"}
        assert graph.has_edge("n0", "n1") and graph.has_edge("n1", "n2")
        assert not graph.has_edge("n0", "n2")
