"""Unit tests for addressing policies, aggregation, and auth policies."""

import pytest
from hypothesis import given, strategies as st

from repro.core.addressing import (AddressingError, FlatAddressing,
                                   TopologicalAddressing,
                                   aggregate_forwarding_table,
                                   lookup_aggregated)
from repro.core.auth import (AllowAll, AllowList, ChallengeResponse, DenyAll,
                             NoAuth, PresharedKey)
from repro.core.names import Address, ApplicationName


class TestFlatAddressing:
    def test_sequential_assignment(self):
        policy = FlatAddressing()
        assert policy.assign() == Address(1)
        assert policy.assign() == Address(2)

    def test_region_hint_ignored(self):
        assert FlatAddressing().assign(region_hint=(5,)) == Address(1)

    def test_release_enables_reuse(self):
        policy = FlatAddressing()
        first = policy.assign()
        policy.release(first)
        assert policy.assign() == first

    def test_release_rejects_topological(self):
        with pytest.raises(AddressingError):
            FlatAddressing().release(Address(1, 2))

    def test_describe(self):
        assert FlatAddressing().describe() == "flat"


class TestTopologicalAddressing:
    def test_region_prefix_in_address(self):
        policy = TopologicalAddressing()
        address = policy.assign(region_hint=(3, 1))
        assert address.parts[:2] == (3, 1)

    def test_counters_independent_per_region(self):
        policy = TopologicalAddressing()
        first = policy.assign(region_hint=(1,))
        second = policy.assign(region_hint=(2,))
        third = policy.assign(region_hint=(1,))
        assert first == Address(1, 1)
        assert second == Address(2, 1)
        assert third == Address(1, 2)

    def test_default_region(self):
        policy = TopologicalAddressing(default_region=(9,))
        assert policy.assign() == Address(9, 1)

    def test_describe(self):
        assert TopologicalAddressing().describe() == "topological"


class TestAggregation:
    def test_uniform_table_collapses_to_default(self):
        table = {Address(1, i): "hop" for i in range(10)}
        entries = aggregate_forwarding_table(table)
        assert entries == [((), "hop")]

    def test_regions_with_distinct_hops_aggregate_per_region(self):
        table = {}
        for host in range(5):
            table[Address(1, host)] = "east"
            table[Address(2, host)] = "west"
        entries = aggregate_forwarding_table(table)
        # covering route for one region plus an override for the other
        assert len(entries) == 2
        assert all(lookup_aggregated(entries, dst) == hop
                   for dst, hop in table.items())

    def test_exception_entry_is_longer_prefix(self):
        table = {Address(1, host): "east" for host in range(4)}
        table[Address(1, 9)] = "special"
        entries = aggregate_forwarding_table(table)
        assert ((1, 9), "special") in entries
        # the bulk of region 1 still aggregates
        assert len(entries) < len(table)

    def test_empty_table(self):
        assert aggregate_forwarding_table({}) == []

    def test_lookup_longest_prefix_wins(self):
        entries = [((1,), "region"), ((1, 9), "host")]
        assert lookup_aggregated(entries, Address(1, 9)) == "host"
        assert lookup_aggregated(entries, Address(1, 3)) == "region"

    def test_lookup_miss_returns_none(self):
        assert lookup_aggregated([((2,), "x")], Address(1, 1)) is None

    @given(st.dictionaries(
        st.tuples(st.integers(0, 3), st.integers(0, 3), st.integers(0, 5)),
        st.sampled_from(["a", "b", "c"]), min_size=1, max_size=40))
    def test_property_aggregation_preserves_lookups(self, raw):
        table = {Address(*parts): hop for parts, hop in raw.items()}
        entries = aggregate_forwarding_table(table)
        for destination, hop in table.items():
            assert lookup_aggregated(entries, destination) == hop

    @given(st.dictionaries(
        st.tuples(st.integers(0, 2), st.integers(0, 8)),
        st.sampled_from(["a", "b"]), min_size=1, max_size=30))
    def test_property_aggregation_never_larger(self, raw):
        table = {Address(*parts): hop for parts, hop in raw.items()}
        assert len(aggregate_forwarding_table(table)) <= len(table)


class TestAuthPolicies:
    def test_noauth_accepts_everything(self):
        policy = NoAuth()
        assert policy.verify(policy.credentials(policy.make_challenge()),
                             None)

    def test_psk_accepts_matching_secret(self):
        policy = PresharedKey("s3cret")
        assert policy.verify(policy.credentials(None), None)

    def test_psk_rejects_wrong_secret(self):
        good = PresharedKey("s3cret")
        bad = PresharedKey("guess")
        assert not good.verify(bad.credentials(None), None)

    def test_psk_rejects_non_string(self):
        assert not PresharedKey("s").verify(42, None)

    def test_psk_requires_secret(self):
        with pytest.raises(ValueError):
            PresharedKey("")

    def test_challenge_response_roundtrip(self):
        policy = ChallengeResponse("shared")
        challenge = policy.make_challenge()
        assert policy.verify(policy.credentials(challenge), challenge)

    def test_challenge_response_rejects_wrong_secret(self):
        server = ChallengeResponse("shared")
        client = ChallengeResponse("wrong")
        challenge = server.make_challenge()
        assert not server.verify(client.credentials(challenge), challenge)

    def test_challenge_response_rejects_replay(self):
        policy = ChallengeResponse("shared")
        old_challenge = policy.make_challenge()
        reply = policy.credentials(old_challenge)
        fresh_challenge = policy.make_challenge()
        assert not policy.verify(reply, fresh_challenge)

    def test_challenges_unique(self):
        policy = ChallengeResponse("s")
        assert policy.make_challenge() != policy.make_challenge()

    def test_challenge_response_requires_challenge(self):
        policy = ChallengeResponse("s")
        assert not policy.verify("anything", None)


class TestFlowAccessPolicies:
    def test_allow_all(self):
        assert AllowAll().allow(ApplicationName("a"), ApplicationName("b"))

    def test_deny_all(self):
        assert not DenyAll().allow(ApplicationName("a"), ApplicationName("b"))

    def test_allow_list(self):
        policy = AllowList([ApplicationName("friend")])
        assert policy.allow(ApplicationName("friend"), ApplicationName("svc"))
        assert not policy.allow(ApplicationName("foe"), ApplicationName("svc"))

    def test_allow_list_add(self):
        policy = AllowList([])
        policy.add(ApplicationName("late"))
        assert policy.allow(ApplicationName("late"), ApplicationName("svc"))
