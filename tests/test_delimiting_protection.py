"""Unit tests for SDU delimiting and SDU protection."""

import pytest
from hypothesis import given, strategies as st

from repro.core.delimiting import (FRAGMENT_HEADER_BYTES, Delimiter, Fragment,
                                   Reassembler)
from repro.core.sdu_protection import (PROTECTION_OVERHEAD_BYTES,
                                       SduProtection, SduProtectionError)


class TestDelimiter:
    def test_small_message_is_one_fragment(self):
        fragments = Delimiter(max_fragment=100).delimit(b"hello")
        assert len(fragments) == 1
        assert fragments[0].last
        assert fragments[0].data == b"hello"

    def test_large_message_fragments_at_boundary(self):
        fragments = Delimiter(max_fragment=10).delimit(b"x" * 25)
        assert [len(f.data) for f in fragments] == [10, 10, 5]
        assert [f.index for f in fragments] == [0, 1, 2]
        assert [f.last for f in fragments] == [False, False, True]

    def test_exact_multiple_has_no_empty_tail(self):
        fragments = Delimiter(max_fragment=10).delimit(b"x" * 20)
        assert [len(f.data) for f in fragments] == [10, 10]

    def test_empty_message_yields_one_empty_fragment(self):
        fragments = Delimiter().delimit(b"")
        assert len(fragments) == 1
        assert fragments[0].last and fragments[0].data == b""

    def test_message_ids_increase(self):
        delimiter = Delimiter()
        first = delimiter.delimit(b"a")[0].message_id
        second = delimiter.delimit(b"b")[0].message_id
        assert second == first + 1

    def test_wire_size_includes_header(self):
        fragment = Fragment(0, 0, True, b"12345")
        assert fragment.wire_size() == FRAGMENT_HEADER_BYTES + 5

    def test_invalid_max_fragment(self):
        with pytest.raises(ValueError):
            Delimiter(max_fragment=0)


class TestReassembler:
    def test_roundtrip_single(self):
        delimiter, reassembler = Delimiter(max_fragment=8), Reassembler()
        outputs = [reassembler.push(f) for f in delimiter.delimit(b"payload!" * 4)]
        assert outputs[-1] == b"payload!" * 4
        assert all(o is None for o in outputs[:-1])

    @given(st.lists(st.binary(max_size=300), min_size=1, max_size=10),
           st.integers(min_value=1, max_value=64))
    def test_property_roundtrip_many_messages(self, messages, max_fragment):
        delimiter = Delimiter(max_fragment=max_fragment)
        reassembler = Reassembler()
        received = []
        for message in messages:
            for fragment in delimiter.delimit(message):
                result = reassembler.push(fragment)
                if result is not None:
                    received.append(result)
        assert received == messages

    def test_missing_head_discards(self):
        delimiter, reassembler = Delimiter(max_fragment=4), Reassembler()
        fragments = delimiter.delimit(b"abcdefgh")
        assert reassembler.push(fragments[1]) is None
        assert reassembler.messages_discarded == 1

    def test_gap_in_middle_discards_message(self):
        delimiter, reassembler = Delimiter(max_fragment=4), Reassembler()
        fragments = delimiter.delimit(b"abcdefghijkl")
        reassembler.push(fragments[0])
        assert reassembler.push(fragments[2]) is None
        assert reassembler.messages_discarded == 1

    def test_new_message_preempts_incomplete_one(self):
        delimiter, reassembler = Delimiter(max_fragment=4), Reassembler()
        first = delimiter.delimit(b"abcdefgh")
        second = delimiter.delimit(b"wxyz")
        reassembler.push(first[0])            # incomplete
        result = reassembler.push(second[0])  # new message begins
        assert result == b"wxyz"
        assert reassembler.messages_discarded == 1

    def test_recovers_after_discard(self):
        delimiter, reassembler = Delimiter(max_fragment=4), Reassembler()
        lost = delimiter.delimit(b"abcdefgh")
        reassembler.push(lost[0])
        result = None
        for fragment in delimiter.delimit(b"hello"):
            result = reassembler.push(fragment)
        assert result == b"hello"


class TestSduProtection:
    def test_protect_unprotect_roundtrip(self):
        protection = SduProtection()
        assert protection.unprotect(protection.protect(b"data")) == b"data"

    @given(st.binary(max_size=2000))
    def test_property_roundtrip(self, data):
        protection = SduProtection()
        assert protection.unprotect(protection.protect(data)) == data

    def test_overhead_is_constant(self):
        protection = SduProtection()
        wrapped = protection.protect(b"x" * 10)
        assert len(wrapped) == 10 + PROTECTION_OVERHEAD_BYTES

    def test_corruption_detected(self):
        protection = SduProtection()
        wrapped = bytearray(protection.protect(b"data"))
        wrapped[2] ^= 0xFF
        with pytest.raises(SduProtectionError):
            protection.unprotect(bytes(wrapped))

    def test_crc_disabled_skips_check(self):
        protection = SduProtection(use_crc=False)
        wrapped = bytearray(protection.protect(b"data"))
        wrapped[2] ^= 0xFF
        assert protection.unprotect(bytes(wrapped)) != b"data"

    def test_hop_decrement_chain(self):
        protection = SduProtection(max_hops=3)
        wrapped = protection.protect(b"d")
        for _ in range(2):
            wrapped = protection.decrement_hops(wrapped)
        assert protection.unprotect(wrapped) == b"d"

    def test_lifetime_exhaustion(self):
        protection = SduProtection(max_hops=1)
        wrapped = protection.decrement_hops(protection.protect(b"d"))
        with pytest.raises(SduProtectionError):
            protection.unprotect(wrapped)

    def test_decrement_exhausted_raises(self):
        protection = SduProtection(max_hops=1)
        wrapped = protection.decrement_hops(protection.protect(b"d"))
        with pytest.raises(SduProtectionError):
            protection.decrement_hops(wrapped)

    def test_too_short_sdu_rejected(self):
        with pytest.raises(SduProtectionError):
            SduProtection().unprotect(b"xy")

    def test_max_hops_validation(self):
        with pytest.raises(ValueError):
            SduProtection(max_hops=0)
        with pytest.raises(ValueError):
            SduProtection(max_hops=256)

    @given(st.binary(max_size=200), st.integers(min_value=2, max_value=64))
    def test_property_decrement_preserves_payload(self, data, hops):
        protection = SduProtection(max_hops=hops)
        wrapped = protection.protect(data)
        for _ in range(hops - 1):
            wrapped = protection.decrement_hops(wrapped)
        assert protection.unprotect(wrapped) == data
