"""Portability and typing regression pins.

Three bug classes this PR fixed must stay fixed:

* a top-level ``import resource`` took the whole experiments package
  down on non-POSIX platforms — the import is now lazy and guarded,
  reporting ``None`` where the platform cannot measure peak RSS;
* ``ru_maxrss`` units differ by platform (kilobytes on Linux, *bytes*
  on macOS) — the divisor follows ``sys.platform``;
* implicit-Optional parameter annotations (``x: str = None``) — the
  whole ``src/`` tree is swept by AST so no new ones appear.
"""

import ast
import importlib
import pathlib
import sys
import types

import pytest

SRC = pathlib.Path(__file__).resolve().parent.parent / "src"


def _fresh_e6(monkeypatch):
    """Re-import e6_scalability under the current (possibly patched)
    ``resource`` visibility, restoring the original module after."""
    name = "repro.experiments.e6_scalability"
    original = sys.modules.pop(name, None)
    try:
        return importlib.import_module(name)
    finally:
        sys.modules.pop(name, None)
        if original is not None:
            sys.modules[name] = original


class TestPeakMemPortability:
    def test_package_imports_without_resource(self, monkeypatch):
        """Blocking ``resource`` (the non-POSIX condition) must not
        break the import — the regression that motivated the fix."""
        monkeypatch.setitem(sys.modules, "resource", None)
        module = _fresh_e6(monkeypatch)
        assert module._peak_mem_mb() is None

    def test_peak_mem_none_when_resource_missing(self, monkeypatch):
        from repro.experiments.e6_scalability import _peak_mem_mb
        monkeypatch.setitem(sys.modules, "resource", None)
        assert _peak_mem_mb() is None

    def test_none_peak_mem_renders_in_tables(self):
        from repro.experiments.common import format_table
        table = format_table([{"tier": "small", "peak_mem_mb": None}])
        assert "-" in table

    @staticmethod
    def _fake_resource(ru_maxrss):
        fake = types.ModuleType("resource")
        fake.RUSAGE_SELF = 0
        fake.getrusage = lambda who: types.SimpleNamespace(
            ru_maxrss=ru_maxrss)
        return fake

    def test_linux_reports_kilobytes(self, monkeypatch):
        from repro.experiments import e6_scalability
        monkeypatch.setitem(sys.modules, "resource",
                            self._fake_resource(3 * 1024))   # 3 MB in KB
        monkeypatch.setattr(e6_scalability.sys, "platform", "linux")
        assert e6_scalability._peak_mem_mb() == 3.0

    def test_darwin_reports_bytes(self, monkeypatch):
        from repro.experiments import e6_scalability
        monkeypatch.setitem(sys.modules, "resource",
                            self._fake_resource(3 * 1024 * 1024))  # bytes
        monkeypatch.setattr(e6_scalability.sys, "platform", "darwin")
        assert e6_scalability._peak_mem_mb() == 3.0

    def test_real_platform_measures_something(self):
        from repro.experiments.e6_scalability import _peak_mem_mb
        value = _peak_mem_mb()
        if value is not None:   # POSIX: a live process has a footprint
            assert value > 0


class TestHostAddr:
    def test_no_interfaces_is_a_clear_error(self):
        from repro.baselines.sockets import Host
        from repro.sim.network import Network
        network = Network(seed=0)
        host = Host(network.add_node("lonely"))
        with pytest.raises(RuntimeError, match="no interfaces"):
            host.addr()

    def test_named_and_first_interface_still_resolve(self):
        from repro.baselines.sockets import Host
        from repro.baselines.ipnet import ip
        from repro.sim.network import Network
        network = Network(seed=0)
        a, b = network.add_node("a"), network.add_node("b")
        network.connect("a", "b", name="wire")
        host_a, host_b = Host(a), Host(b)
        host_a.ip.add_interface(next(iter(a.interfaces())).name,
                                ip("10.0.0.1"), 24)
        host_b.ip.add_interface(next(iter(b.interfaces())).name,
                                ip("10.0.0.2"), 24)
        assert host_a.addr() == ip("10.0.0.1")
        name = next(iter(host_a.ip.interfaces))
        assert host_a.addr(name) == ip("10.0.0.1")


class TestNoImplicitOptionals:
    """PEP 484 dropped implicit Optional: ``x: str = None`` lies to the
    reader and to type checkers.  Sweep every annotated signature in
    ``src/`` — a ``None`` default requires Optional/Any/None in the
    annotation."""

    @staticmethod
    def _offenders(tree, path):
        found = []
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for args, defaults in (
                    (node.args.args + node.args.posonlyargs,
                     node.args.defaults),
                    (node.args.kwonlyargs, node.args.kw_defaults)):
                paired = zip(args[len(args) - len(defaults):], defaults) \
                    if defaults is not node.args.kw_defaults \
                    else zip(args, defaults)
                for arg, default in paired:
                    if (default is None or arg.annotation is None
                            or not (isinstance(default, ast.Constant)
                                    and default.value is None)):
                        continue
                    annotation = ast.unparse(arg.annotation)
                    if not any(ok in annotation for ok in
                               ("Optional", "None", "Any", "object")):
                        found.append(f"{path}:{node.lineno} "
                                     f"{node.name}({arg.arg}: {annotation}"
                                     f" = None)")
        return found

    def test_src_tree_is_clean(self):
        offenders = []
        for path in sorted(SRC.rglob("*.py")):
            tree = ast.parse(path.read_text(), filename=str(path))
            offenders.extend(self._offenders(tree, path.relative_to(SRC)))
        assert offenders == [], "\n".join(offenders)

    def test_sweep_detects_the_original_bug(self):
        """The sweep must actually catch the pattern it guards against
        (the pre-fix ``ifname: str = None`` signature)."""
        tree = ast.parse("def addr(self, ifname: str = None) -> int: ...")
        assert self._offenders(tree, pathlib.Path("x.py"))
