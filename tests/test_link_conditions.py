"""Property and regression tests for the composable link-condition layer
(jitter, token-bucket shaping, payload corruption, bounded reordering).

Each model is a strategy object drawing from its own named deterministic
RNG stream, so the core invariants here double as the determinism
contract: a clean link is byte-identical to the pre-conditions code
path, and installing a condition can never perturb the loss stream or
any other link's streams.
"""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.engine import Engine
from repro.sim.link import (BandwidthShaper, CorruptedFrame, CorruptionModel,
                            Link, LinkConditions, NormalJitter, ReorderModel,
                            UniformJitter, UniformLoss)
from repro.sim.network import Network


def make_link(name="test", **kwargs):
    engine = Engine()
    link = Link(engine, name, **kwargs)
    inbox_a, inbox_b = [], []
    link.ends[0].attach(lambda p, s: inbox_a.append((engine.now, p, s)))
    link.ends[1].attach(lambda p, s: inbox_b.append((engine.now, p, s)))
    return engine, link, inbox_a, inbox_b


# ----------------------------------------------------------------------
# Jitter
# ----------------------------------------------------------------------
class TestJitterModels:
    @settings(max_examples=60, deadline=None)
    @given(st.floats(min_value=0.0, max_value=1.0),
           st.floats(min_value=0.0, max_value=1.0),
           st.integers(min_value=0, max_value=10_000))
    def test_property_normal_sample_finite_in_range(self, mean, stddev, seed):
        model = NormalJitter(mean=mean, stddev=stddev)
        rng = random.Random(seed)
        for _ in range(200):
            value = model.sample(rng)
            assert math.isfinite(value)
            assert 0.0 <= value <= model.cap

    @settings(max_examples=40, deadline=None)
    @given(st.floats(min_value=0.0, max_value=1.0),
           st.integers(min_value=0, max_value=10_000))
    def test_property_uniform_sample_in_range(self, amplitude, seed):
        model = UniformJitter(amplitude)
        rng = random.Random(seed)
        for _ in range(200):
            value = model.sample(rng)
            assert math.isfinite(value)
            assert 0.0 <= value <= amplitude

    def test_normal_cap_defaults_to_mean_plus_four_sigma(self):
        model = NormalJitter(mean=0.01, stddev=0.002)
        assert model.cap == pytest.approx(0.01 + 4 * 0.002)

    @pytest.mark.parametrize("bad", [-0.1, math.inf, math.nan])
    def test_invalid_parameters_rejected(self, bad):
        with pytest.raises(ValueError):
            UniformJitter(bad)
        with pytest.raises(ValueError):
            NormalJitter(mean=bad, stddev=0.001)
        with pytest.raises(ValueError):
            NormalJitter(mean=0.001, stddev=bad)

    def test_preserve_order_keeps_fifo_under_heavy_jitter(self):
        # jitter amplitude 100x the inter-frame spacing: without the
        # clamp nearly every pair would swap
        engine, link, _a, inbox_b = make_link(
            capacity_bps=1e8, delay=0.001,
            conditions=LinkConditions(jitter=UniformJitter(0.1)))
        for index in range(50):
            engine.call_at(index * 0.001, link.ends[0].send, index, 100)
        engine.run()
        assert [p for _t, p, _s in inbox_b] == list(range(50))
        times = [t for t, _p, _s in inbox_b]
        assert times == sorted(times)

    def test_unordered_jitter_actually_reorders(self):
        engine, link, _a, inbox_b = make_link(
            capacity_bps=1e8, delay=0.001,
            conditions=LinkConditions(
                jitter=UniformJitter(0.1, preserve_order=False)))
        for index in range(50):
            engine.call_at(index * 0.001, link.ends[0].send, index, 100)
        engine.run()
        got = [p for _t, p, _s in inbox_b]
        assert sorted(got) == list(range(50))   # nothing lost or duplicated
        assert got != list(range(50))           # ... but order was broken

    def test_jitter_never_delivers_before_propagation(self):
        engine, link, _a, inbox_b = make_link(
            capacity_bps=1e8, delay=0.005,
            conditions=LinkConditions(jitter=NormalJitter(0.002, 0.001)))
        sends = []
        for index in range(40):
            engine.call_at(index * 0.01,
                           lambda i=index: (sends.append(engine.now),
                                            link.ends[0].send(i, 100)))
        engine.run()
        for (when, _p, _s), sent in zip(inbox_b, sends):
            assert when >= sent + 0.005


# ----------------------------------------------------------------------
# Token-bucket shaping
# ----------------------------------------------------------------------
class TestBandwidthShaper:
    def test_full_bucket_costs_nothing(self):
        shaper = BandwidthShaper(1e6, burst_bytes=10_000)
        assert shaper.reserve(0, 1000, 0.0) == 0.0

    def test_deficit_wait_is_exact(self):
        shaper = BandwidthShaper(8e6, burst_bytes=1000)  # 1e6 B/s
        shaper.reserve(0, 1000, 0.0)                     # drain the bucket
        assert shaper.reserve(0, 500, 0.0) == pytest.approx(500 / 1e6)

    def test_directions_have_independent_buckets(self):
        shaper = BandwidthShaper(8e6, burst_bytes=1000)
        shaper.reserve(0, 1000, 0.0)
        assert shaper.reserve(1, 1000, 0.0) == 0.0

    @settings(max_examples=25, deadline=None)
    @given(st.sampled_from([1e6, 4e6, 1e7]),
           st.floats(min_value=2000.0, max_value=20_000.0),
           st.integers(min_value=0, max_value=10_000))
    def test_property_window_bound_over_any_interval(self, rate_bps, burst,
                                                     seed):
        """Over ANY window [t_i, t_j] the shaped wire delivers at most
        ``burst + rate * window`` bytes, plus one in-flight frame."""
        engine, link, _a, inbox_b = make_link(
            name=f"shape{seed}", capacity_bps=1e9, delay=0.0,
            conditions=LinkConditions(
                shaper=BandwidthShaper(rate_bps, burst_bytes=burst)))
        rng = random.Random(seed)
        clock = 0.0
        for index in range(40):
            clock += rng.random() * 0.002
            engine.call_at(clock, link.ends[0].send, index,
                           rng.choice([200, 600, 1500]))
        engine.run()
        assert len(inbox_b) == 40
        rate = rate_bps / 8.0
        deliveries = [(t, s) for t, _p, s in inbox_b]
        for i in range(len(deliveries)):
            total = 0
            for j in range(i, len(deliveries)):
                total += deliveries[j][1]
                window = deliveries[j][0] - deliveries[i][0]
                assert total <= burst + rate * window + 1500 + 1e-6

    def test_long_run_goodput_converges_to_rate(self):
        rate_bps = 2e6
        engine, link, _a, inbox_b = make_link(
            capacity_bps=1e9, delay=0.0,
            conditions=LinkConditions(
                shaper=BandwidthShaper(rate_bps, burst_bytes=3000)))

        def pump(index=[0]):
            if engine.now < 2.0:
                link.ends[0].send(index[0], 1000)
                index[0] += 1
                engine.call_later(0.001, pump)   # 8 Mb/s offered
        pump()
        engine.run()
        span = inbox_b[-1][0] - inbox_b[0][0]
        goodput = sum(s for _t, _p, s in inbox_b[1:]) * 8.0 / span
        assert goodput == pytest.approx(rate_bps, rel=0.1)

    def test_shaping_preserves_fifo(self):
        engine, link, _a, inbox_b = make_link(
            capacity_bps=1e9, delay=0.001,
            conditions=LinkConditions(shaper=BandwidthShaper(1e6)))
        for index in range(30):
            link.ends[0].send(index, 500)
        engine.run()
        assert [p for _t, p, _s in inbox_b] == list(range(30))

    @pytest.mark.parametrize("rate", [0.0, -1.0, math.inf])
    def test_invalid_rate_rejected(self, rate):
        with pytest.raises(ValueError):
            BandwidthShaper(rate)


# ----------------------------------------------------------------------
# Corruption
# ----------------------------------------------------------------------
class TestCorruption:
    @settings(max_examples=12, deadline=None)
    @given(st.floats(min_value=0.05, max_value=0.4),
           st.integers(min_value=0, max_value=10_000))
    def test_property_corruption_rate_converges(self, probability, seed):
        count = 1500
        engine, link, _a, inbox_b = make_link(
            name=f"corr{seed}", capacity_bps=1e9, delay=0.0,
            queue_limit=2000,
            conditions=LinkConditions(
                corruption=CorruptionModel(probability)))
        for index in range(count):
            link.ends[0].send(bytes([index % 256]) * 64, 64)
        engine.run()
        assert len(inbox_b) == count          # corrupted frames still arrive
        corrupted = link.frames_corrupted[0]
        sigma = math.sqrt(count * probability * (1 - probability))
        assert abs(corrupted - count * probability) <= 5 * sigma

    def test_bytes_payload_damaged_in_place(self):
        # max_flips=1 so a flip can never cancel another: the delivered
        # payload must differ from the original
        engine, link, _a, inbox_b = make_link(
            capacity_bps=1e9, delay=0.0,
            conditions=LinkConditions(
                corruption=CorruptionModel(1.0, max_flips=1)))
        original = bytes(range(64))
        link.ends[0].send(original, 64)
        engine.run()
        _t, payload, size = inbox_b[0]
        assert isinstance(payload, bytes)
        assert len(payload) == len(original)
        assert payload != original
        assert size == 64
        assert link.frames_corrupted[0] == 1

    def test_live_object_payload_wrapped_in_sentinel(self):
        engine, link, _a, inbox_b = make_link(
            capacity_bps=1e9, delay=0.0,
            conditions=LinkConditions(corruption=CorruptionModel(1.0)))
        link.ends[0].send(("data", 1, "payload"), 100)
        engine.run()
        _t, payload, _s = inbox_b[0]
        assert isinstance(payload, CorruptedFrame)
        assert payload.payload == ("data", 1, "payload")

    def test_zero_probability_never_corrupts(self):
        engine, link, _a, inbox_b = make_link(
            capacity_bps=1e9, delay=0.0,
            conditions=LinkConditions(corruption=CorruptionModel(0.0)))
        for index in range(100):
            link.ends[0].send(b"x" * 32, 32)
        engine.run()
        assert link.frames_corrupted == [0, 0]
        assert all(p == b"x" * 32 for _t, p, _s in inbox_b)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            CorruptionModel(1.5)
        with pytest.raises(ValueError):
            CorruptionModel(0.1, max_flips=0)


# ----------------------------------------------------------------------
# Reordering
# ----------------------------------------------------------------------
class TestReorder:
    @settings(max_examples=20, deadline=None)
    @given(st.floats(min_value=0.1, max_value=0.9),
           st.integers(min_value=1, max_value=5),
           st.integers(min_value=0, max_value=10_000))
    def test_property_displacement_bounded_nothing_lost(self, probability,
                                                        depth, seed):
        engine, link, _a, inbox_b = make_link(
            name=f"reorder{seed}", capacity_bps=1e9, delay=0.001,
            conditions=LinkConditions(
                reorder=ReorderModel(probability, depth=depth,
                                     max_hold=10.0)))
        count = 80
        for index in range(count):
            engine.call_at(index * 0.001, link.ends[0].send, index, 100)
        engine.run()
        got = [p for _t, p, _s in inbox_b]
        assert sorted(got) == list(range(count))   # exactly once each
        for position, payload in enumerate(got):
            assert abs(position - payload) <= depth

    def test_max_hold_timeout_flushes_a_stranded_frame(self):
        engine, link, _a, inbox_b = make_link(
            capacity_bps=1e9, delay=0.001,
            conditions=LinkConditions(
                reorder=ReorderModel(1.0, depth=3, max_hold=0.02)))
        link.ends[0].send("lone", 100)   # parked; no later frames overtake
        engine.run()
        assert [p for _t, p, _s in inbox_b] == ["lone"]
        # parked at serialization end, released max_hold later, then its
        # (already-drawn) propagation delay applies
        assert inbox_b[0][0] == pytest.approx(0.02 + 0.001, abs=1e-5)

    def test_removing_the_model_releases_held_frames(self):
        engine, link, _a, inbox_b = make_link(
            capacity_bps=1e9, delay=0.001,
            conditions=LinkConditions(
                reorder=ReorderModel(1.0, depth=10, max_hold=50.0)))
        link.ends[0].send("parked", 100)
        engine.run(until=0.01)
        assert inbox_b == []                       # still parked
        link.conditions = None                     # injector window closes
        engine.run()
        assert [p for _t, p, _s in inbox_b] == ["parked"]

    def test_held_frames_die_with_the_link(self):
        engine, link, _a, inbox_b = make_link(
            capacity_bps=1e9, delay=0.001,
            conditions=LinkConditions(
                reorder=ReorderModel(1.0, depth=10, max_hold=0.05)))
        link.ends[0].send("doomed", 100)
        engine.run(until=0.01)
        link.fail()
        engine.run()
        assert inbox_b == []

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            ReorderModel(-0.1)
        with pytest.raises(ValueError):
            ReorderModel(0.5, depth=0)
        with pytest.raises(ValueError):
            ReorderModel(0.5, max_hold=math.inf)


# ----------------------------------------------------------------------
# Bundle semantics + spec grammar
# ----------------------------------------------------------------------
class TestLinkConditionsBundle:
    def test_replace_returns_new_bundle(self):
        base = LinkConditions(jitter=UniformJitter(0.01))
        swapped = base.replace(corruption=CorruptionModel(0.1))
        assert swapped is not base
        assert swapped.jitter is base.jitter
        assert swapped.corruption is not None and base.corruption is None
        with pytest.raises(TypeError):
            base.replace(nonsense=1)

    def test_fresh_reinstantiates_only_stateful_models(self):
        bundle = LinkConditions(jitter=UniformJitter(0.01),
                                shaper=BandwidthShaper(1e6),
                                corruption=CorruptionModel(0.1),
                                reorder=ReorderModel(0.2))
        copy = bundle.fresh()
        assert copy.jitter is bundle.jitter
        assert copy.corruption is bundle.corruption
        assert copy.reorder is bundle.reorder
        assert copy.shaper is not bundle.shaper
        assert copy.shaper.rate_bps == bundle.shaper.rate_bps

    def test_shared_bundle_on_builder_family_gets_fresh_shapers(self):
        net = Network(seed=1)
        for name in ("a", "b", "c"):
            net.add_node(name)
        bundle = LinkConditions(shaper=BandwidthShaper(1e6))
        first = net.connect("a", "b", conditions=bundle)
        second = net.connect("b", "c", conditions=bundle)
        assert first.conditions.shaper is not second.conditions.shaper
        assert first.conditions.shaper is not bundle.shaper

    def test_from_dict_grammar(self):
        bundle = LinkConditions.from_dict({
            "jitter": {"model": "normal", "mean": 0.005, "stddev": 0.002},
            "shaper": {"rate_bps": 2e6, "burst_bytes": 4000.0},
            "corruption": {"probability": 0.1, "max_flips": 2},
            "reorder": {"probability": 0.2, "depth": 3},
        })
        assert isinstance(bundle.jitter, NormalJitter)
        assert bundle.shaper.burst_bytes == 4000.0
        assert bundle.corruption.max_flips == 2
        assert bundle.reorder.depth == 3

    def test_from_dict_empty_means_no_bundle(self):
        assert LinkConditions.from_dict({}) is None
        assert LinkConditions.from_dict({"jitter": None}) is None

    def test_from_dict_rejects_unknown_keys_and_models(self):
        with pytest.raises(ValueError):
            LinkConditions.from_dict({"turbo": {}})
        with pytest.raises(ValueError):
            LinkConditions.from_dict({"jitter": {"model": "pareto"}})

    def test_type_validation(self):
        with pytest.raises(TypeError):
            LinkConditions(jitter="0.01")
        engine = Engine()
        link = Link(engine, "t")
        with pytest.raises(TypeError):
            link.conditions = "nope"


# ----------------------------------------------------------------------
# Determinism and RNG-stream isolation (the PR-7 loss-model audit)
# ----------------------------------------------------------------------
def _run_conditioned_net(seed, condition_link=None):
    """Two lossy links in a chain; optionally install conditions on one
    mid-run.  Returns per-link delivery traces and the links."""
    net = Network(seed=seed)
    for name in ("a", "b", "c"):
        net.add_node(name)
    first = net.connect("a", "b", capacity_bps=1e7, delay=0.002,
                        loss=UniformLoss(0.2), name="first")
    second = net.connect("b", "c", capacity_bps=1e7, delay=0.002,
                         loss=UniformLoss(0.2), name="second")
    traces = {"first": [], "second": []}

    def record(name):
        # normalize the CorruptedFrame sentinel (no __eq__: identity
        # compare would make equal traces look different)
        def on_receive(p, s):
            if isinstance(p, CorruptedFrame):
                p = ("corrupted", p.payload)
            traces[name].append((net.engine.now, p))
        return on_receive
    first.ends[1].attach(record("first"))
    second.ends[1].attach(record("second"))
    for index in range(200):
        net.engine.call_at(index * 0.001, first.ends[0].send, index, 200)
        net.engine.call_at(index * 0.001, second.ends[0].send, index, 200)
    if condition_link is not None:
        bundle = LinkConditions(jitter=UniformJitter(0.003),
                                corruption=CorruptionModel(0.3))
        link = {"first": first, "second": second}[condition_link]
        net.engine.call_at(0.05, setattr, link, "conditions", bundle)
    net.engine.run()
    return traces, first, second


class TestRngStreamIsolation:
    def test_condition_only_link_never_materializes_loss_prng(self):
        """A jitter/shaping-only link keeps the PR-7 lossless fast path:
        the lazy loss PRNG must never be built."""
        net = Network(seed=3)
        net.add_node("a")
        net.add_node("b")
        link = net.connect("a", "b", conditions=LinkConditions(
            jitter=UniformJitter(0.002),
            shaper=BandwidthShaper(1e7)))
        got = []
        link.ends[1].attach(lambda p, s: got.append(p))
        for index in range(50):
            link.ends[0].send(index, 200)
        net.engine.run()
        assert len(got) == 50
        assert link._rng is None            # loss stream never drawn
        assert set(link._cond_rngs) == {"jitter"}   # shaper needs no RNG

    def test_identical_seeds_identical_sequences(self):
        one, _f1, _s1 = _run_conditioned_net(11, condition_link="first")
        two, _f2, _s2 = _run_conditioned_net(11, condition_link="first")
        assert one == two

    def test_installing_conditions_does_not_perturb_other_links(self):
        """The heart of the audit: turning a condition on for link A must
        leave link B's loss draws — and so its whole delivery trace —
        bit-identical."""
        clean, _f0, second_clean = _run_conditioned_net(11)
        storm, _f1, second_storm = _run_conditioned_net(
            11, condition_link="first")
        assert storm["second"] == clean["second"]
        assert (second_storm.frames_dropped_loss
                == second_clean.frames_dropped_loss)

    def test_conditions_do_not_perturb_own_loss_stream(self):
        """Same link, conditions on vs off: the loss stream is a separate
        named stream, so exactly the same frames must be loss-dropped."""
        clean, first_clean, _s0 = _run_conditioned_net(11)
        storm, first_storm, _s1 = _run_conditioned_net(
            11, condition_link="first")
        assert (first_storm.frames_dropped_loss
                == first_clean.frames_dropped_loss)
