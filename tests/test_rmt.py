"""Unit tests for the relaying-and-multiplexing task."""

import pytest

from repro.core.names import Address
from repro.core.pdu import DataPdu, ManagementPdu
from repro.core.riep import RiepMessage
from repro.core.rmt import (DrrScheduler, FifoScheduler, HashedPaths,
                            PreferFirstAlive, PriorityScheduler, Rmt, RmtPort,
                            RoundRobinPaths)
from repro.sim.engine import Engine


def data(dst, seq=0, priority=8, size=100, src_cep=1, dst_cep=2):
    return DataPdu(Address(99), dst, src_cep, dst_cep, seq, b"x", size,
                   priority=priority)


class TestFifoScheduler:
    def test_fifo_order(self):
        scheduler = FifoScheduler()
        for index in range(3):
            assert scheduler.push(data(Address(1), seq=index)) is None
        assert [scheduler.pop().seq for _ in range(3)] == [0, 1, 2]

    def test_tail_drop_when_full(self):
        scheduler = FifoScheduler(limit=2)
        scheduler.push(data(Address(1), seq=0))
        scheduler.push(data(Address(1), seq=1))
        displaced = scheduler.push(data(Address(1), seq=2))
        assert displaced is not None and displaced.seq == 2

    def test_pop_empty_returns_none(self):
        assert FifoScheduler().pop() is None


class TestPriorityScheduler:
    def test_lower_priority_value_served_first(self):
        scheduler = PriorityScheduler()
        scheduler.push(data(Address(1), seq=0, priority=8))
        scheduler.push(data(Address(1), seq=1, priority=0))
        scheduler.push(data(Address(1), seq=2, priority=15))
        assert [scheduler.pop().seq for _ in range(3)] == [1, 0, 2]

    def test_fifo_within_class(self):
        scheduler = PriorityScheduler()
        scheduler.push(data(Address(1), seq=0, priority=5))
        scheduler.push(data(Address(1), seq=1, priority=5))
        assert [scheduler.pop().seq for _ in range(2)] == [0, 1]

    def test_high_priority_displaces_low_when_full(self):
        scheduler = PriorityScheduler(limit=2)
        scheduler.push(data(Address(1), seq=0, priority=10))
        scheduler.push(data(Address(1), seq=1, priority=10))
        displaced = scheduler.push(data(Address(1), seq=2, priority=0))
        assert displaced is not None and displaced.priority == 10
        assert scheduler.pop().seq == 2

    def test_low_priority_rejected_when_full_of_high(self):
        scheduler = PriorityScheduler(limit=2)
        scheduler.push(data(Address(1), seq=0, priority=0))
        scheduler.push(data(Address(1), seq=1, priority=0))
        displaced = scheduler.push(data(Address(1), seq=2, priority=9))
        assert displaced is not None and displaced.seq == 2


class TestDrrScheduler:
    def test_shares_service_between_classes(self):
        scheduler = DrrScheduler(quantum=200)
        for index in range(10):
            scheduler.push(data(Address(1), seq=index, priority=0, size=100))
            scheduler.push(data(Address(1), seq=100 + index, priority=8,
                                size=100))
        served = [scheduler.pop().priority for _ in range(10)]
        assert served.count(0) >= 3
        assert served.count(8) >= 3

    def test_weights_bias_service(self):
        scheduler = DrrScheduler(quantum=120, weights={0: 3.0, 8: 1.0})
        for index in range(30):
            scheduler.push(data(Address(1), seq=index, priority=0, size=100))
            scheduler.push(data(Address(1), seq=100 + index, priority=8,
                                size=100))
        served = [scheduler.pop().priority for _ in range(20)]
        assert served.count(0) > served.count(8)

    def test_drains_completely(self):
        scheduler = DrrScheduler()
        for index in range(5):
            scheduler.push(data(Address(1), seq=index, priority=index % 2))
        popped = 0
        while scheduler.pop() is not None:
            popped += 1
        assert popped == 5
        assert len(scheduler) == 0

    def test_limit_respected(self):
        scheduler = DrrScheduler(limit=3)
        rejects = [scheduler.push(data(Address(1), seq=i)) for i in range(5)]
        assert sum(1 for r in rejects if r is not None) == 2


class TestPathSelectors:
    def _ports(self, n):
        ports = []
        for index in range(n):
            port = RmtPort(index, lambda p, s: True, FifoScheduler(),
                           peer_addr=Address(5))
            ports.append(port)
        return ports

    def test_first_alive_prefers_earlier(self):
        ports = self._ports(3)
        assert PreferFirstAlive().select(ports, data(Address(1))) is ports[0]
        ports[0].alive = False
        assert PreferFirstAlive().select(ports, data(Address(1))) is ports[1]

    def test_first_alive_none_when_all_dead(self):
        ports = self._ports(2)
        for port in ports:
            port.alive = False
        assert PreferFirstAlive().select(ports, data(Address(1))) is None

    def test_round_robin_rotates(self):
        ports = self._ports(2)
        selector = RoundRobinPaths()
        chosen = [selector.select(ports, data(Address(1))) for _ in range(4)]
        assert chosen == [ports[0], ports[1], ports[0], ports[1]]

    def test_round_robin_skips_dead(self):
        ports = self._ports(2)
        ports[0].alive = False
        selector = RoundRobinPaths()
        assert all(selector.select(ports, data(Address(1))) is ports[1]
                   for _ in range(3))

    def test_hashed_pins_flow_to_path(self):
        ports = self._ports(4)
        selector = HashedPaths()
        pdu = data(Address(1), src_cep=7, dst_cep=9)
        first = selector.select(ports, pdu)
        assert all(selector.select(ports, pdu) is first for _ in range(5))


class TestRmtForwarding:
    def _rmt(self, local=Address(1)):
        engine = Engine()
        delivered = []
        dropped = []
        rmt = Rmt(engine, lambda: local, lambda pdu, port: delivered.append(pdu),
                  on_drop=lambda pdu, reason: dropped.append(reason))
        return engine, rmt, delivered, dropped

    def test_local_destination_delivered(self):
        engine, rmt, delivered, _d = self._rmt()
        rmt.submit(data(Address(1)))
        assert len(delivered) == 1

    def test_hop_scoped_pdu_delivered(self):
        engine, rmt, delivered, _d = self._rmt()
        rmt.receive(ManagementPdu(None, None, RiepMessage("M_READ")), 1)
        assert len(delivered) == 1

    def test_relay_forwards_via_next_hop_port(self):
        engine, rmt, _del, _d = self._rmt()
        sent = []
        rmt.add_port(5, lambda p, s: sent.append(p) or True,
                     peer_addr=Address(2))
        rmt.set_forwarding(lambda addr: Address(2) if addr == Address(3) else None)
        rmt.receive(data(Address(3)), 9)
        assert len(sent) == 1
        assert rmt.pdus_relayed == 1

    def test_no_route_dropped(self):
        engine, rmt, _del, dropped = self._rmt()
        rmt.submit(data(Address(9)))
        assert dropped == ["no-route"]

    def test_no_port_to_next_hop_dropped(self):
        engine, rmt, _del, dropped = self._rmt()
        rmt.set_forwarding(lambda addr: Address(2))
        rmt.submit(data(Address(9)))
        assert dropped == ["no-port"]

    def test_all_paths_dead_dropped(self):
        engine, rmt, _del, dropped = self._rmt()
        rmt.add_port(5, lambda p, s: True, peer_addr=Address(2))
        rmt.set_alive(5, False)
        rmt.set_forwarding(lambda addr: Address(2))
        rmt.submit(data(Address(9)))
        assert dropped == ["all-paths-dead"]

    def test_ttl_expiry_on_relay(self):
        engine, rmt, _del, dropped = self._rmt()
        rmt.add_port(5, lambda p, s: True, peer_addr=Address(2))
        rmt.set_forwarding(lambda addr: Address(2))
        pdu = data(Address(9))
        pdu.ttl = 1
        rmt.receive(pdu, 3)
        assert dropped == ["ttl-expired"]

    def test_ttl_not_charged_on_local_submit(self):
        engine, rmt, _del, _dropped = self._rmt()
        sent = []
        rmt.add_port(5, lambda p, s: sent.append(p) or True,
                     peer_addr=Address(2))
        rmt.set_forwarding(lambda addr: Address(2))
        pdu = data(Address(9))
        pdu.ttl = 1
        rmt.submit(pdu)
        assert sent  # locally originated: no ttl decrement

    def test_send_on_port_bypasses_forwarding(self):
        engine, rmt, _del, _d = self._rmt()
        sent = []
        rmt.add_port(5, lambda p, s: sent.append(p) or True)
        assert rmt.send_on_port(5, data(Address(42)))
        assert len(sent) == 1

    def test_send_on_missing_port_false(self):
        engine, rmt, _del, _d = self._rmt()
        assert not rmt.send_on_port(99, data(Address(1)))

    def test_duplicate_port_rejected(self):
        engine, rmt, _del, _d = self._rmt()
        rmt.add_port(5, lambda p, s: True)
        with pytest.raises(ValueError):
            rmt.add_port(5, lambda p, s: True)

    def test_set_peer_rebinds_neighbor_lists(self):
        engine, rmt, _del, _d = self._rmt()
        rmt.add_port(5, lambda p, s: True, peer_addr=Address(2))
        rmt.set_peer(5, Address(3))
        assert rmt.ports_to(Address(2)) == []
        assert [p.port_id for p in rmt.ports_to(Address(3))] == [5]
        assert rmt.neighbors() == [Address(3)]

    def test_remove_port_cleans_neighbor(self):
        engine, rmt, _del, _d = self._rmt()
        rmt.add_port(5, lambda p, s: True, peer_addr=Address(2))
        rmt.remove_port(5)
        assert rmt.neighbors() == []

    def test_multiple_ports_to_same_neighbor(self):
        engine, rmt, _del, _d = self._rmt()
        rmt.add_port(5, lambda p, s: True, peer_addr=Address(2))
        rmt.add_port(6, lambda p, s: True, peer_addr=Address(2))
        assert len(rmt.ports_to(Address(2))) == 2


class TestRmtPacing:
    def test_paced_port_spaces_transmissions(self):
        engine = Engine()
        rmt = Rmt(engine, lambda: Address(1), lambda pdu, port: None)
        sent = []
        rmt.add_port(5, lambda p, s: sent.append(engine.now) or True,
                     nominal_bps=8000.0, peer_addr=Address(2))  # 1000 B/s
        rmt.set_forwarding(lambda addr: Address(2))
        for index in range(3):
            rmt.submit(data(Address(9), seq=index, size=80))  # 100 B wire
        engine.run()
        assert sent == pytest.approx([0.0, 0.1, 0.2])

    def test_unpaced_port_sends_immediately(self):
        engine = Engine()
        rmt = Rmt(engine, lambda: Address(1), lambda pdu, port: None)
        sent = []
        rmt.add_port(5, lambda p, s: sent.append(engine.now) or True,
                     peer_addr=Address(2))
        rmt.set_forwarding(lambda addr: Address(2))
        for index in range(3):
            rmt.submit(data(Address(9), seq=index))
        assert sent == [0.0, 0.0, 0.0]

    def test_queue_depths_reported(self):
        engine = Engine()
        rmt = Rmt(engine, lambda: Address(1), lambda pdu, port: None)
        rmt.add_port(5, lambda p, s: True, nominal_bps=80.0,
                     peer_addr=Address(2))
        rmt.set_forwarding(lambda addr: Address(2))
        for index in range(4):
            rmt.submit(data(Address(9), seq=index, size=80))
        assert rmt.queue_depths()[5] >= 2
