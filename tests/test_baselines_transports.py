"""Tests for the baseline transports: TCP, UDP, DNS, SCTP."""

import pytest

from repro.baselines import DnsServer, IpFabric, ip_str
from repro.sim.link import UniformLoss
from repro.sim.network import Network


def host_pair(seed=1, loss=None):
    network = Network(seed=seed)
    network.add_node("a")
    network.add_node("b")
    network.connect("a", "b", loss=loss)
    fabric = IpFabric(network)
    return network, fabric.host("a"), fabric.host("b")


class TestTcp:
    def test_handshake_establishes_both_ends(self):
        network, a, b = host_pair()
        accepted = []
        b.tcp.listen(80, accepted.append)
        conn = a.tcp.connect(a.addr(), b.addr(), 80)
        connected = []
        conn.on_connected = lambda: connected.append(1)
        network.run(until=1.0)
        assert connected and accepted
        assert conn.established and accepted[0].established

    def test_data_transfer_byte_counts(self):
        network, a, b = host_pair()
        got = []
        b.tcp.listen(80, lambda c: setattr(c, "on_data", got.append))
        conn = a.tcp.connect(a.addr(), b.addr(), 80)
        conn.on_connected = lambda: conn.send(10_000)
        network.run(until=5.0)
        assert sum(got) == 10_000

    def test_transfer_survives_loss(self):
        network, a, b = host_pair(loss=UniformLoss(0.1))
        got = []
        b.tcp.listen(80, lambda c: setattr(c, "on_data", got.append))
        conn = a.tcp.connect(a.addr(), b.addr(), 80)
        conn.on_connected = lambda: conn.send(20_000)
        network.run(until=60.0)
        assert sum(got) == 20_000
        assert conn.retransmissions > 0

    def test_syn_to_closed_port_gets_rst(self):
        network, a, b = host_pair()
        conn = a.tcp.connect(a.addr(), b.addr(), 9999)
        aborted = []
        conn.on_aborted = lambda: aborted.append(1)
        network.run(until=5.0)
        assert aborted and conn.state == "aborted"

    def test_connection_bound_to_dead_interface_aborts(self):
        network, a, b = host_pair()
        b.tcp.listen(80, lambda c: None)
        conn = a.tcp.connect(a.addr(), b.addr(), 80)
        network.run(until=1.0)
        assert conn.established
        aborted = []
        conn.on_aborted = lambda: aborted.append(network.engine.now)
        network.link_between("a", "b").fail()
        conn.send(1000)
        network.run(until=200.0)
        assert aborted  # retries exhausted -> the §6.3 failure mode

    def test_syn_retry_gives_up_when_unreachable(self):
        network, a, b = host_pair()
        network.link_between("a", "b").fail()
        conn = a.tcp.connect(a.addr(), b.addr(), 80)
        network.run(until=600.0)
        assert conn.state == "aborted"

    def test_congestion_window_grows(self):
        network, a, b = host_pair()
        b.tcp.listen(80, lambda c: None)
        conn = a.tcp.connect(a.addr(), b.addr(), 80)
        initial = conn.cwnd
        conn.on_connected = lambda: conn.send(100_000)
        network.run(until=10.0)
        assert conn.cwnd > initial

    def test_fin_closes_gracefully(self):
        network, a, b = host_pair()
        accepted = []
        b.tcp.listen(80, accepted.append)
        conn = a.tcp.connect(a.addr(), b.addr(), 80)
        network.run(until=1.0)
        conn.close()
        network.run(until=2.0)
        assert conn.state == "fin-wait"
        assert accepted[0].state == "close-wait"


class TestUdpAndDns:
    def test_udp_datagram_roundtrip(self):
        network, a, b = host_pair()
        got = []
        b.udp.bind(5000, lambda payload, size, src, sport:
                   got.append((payload, src, sport)))
        a.udp.sendto(a.addr(), 1234, b.addr(), 5000, "hello", 5)
        network.run(until=1.0)
        assert got == [("hello", a.addr(), 1234)]

    def test_udp_unbound_port_drops(self):
        network, a, b = host_pair()
        a.udp.sendto(a.addr(), 1, b.addr(), 7777, "x", 1)
        network.run(until=1.0)
        assert b.udp.datagrams_dropped == 1

    def test_udp_duplicate_bind_rejected(self):
        network, a, _b = host_pair()
        a.udp.bind(5000, lambda *args: None)
        with pytest.raises(ValueError):
            a.udp.bind(5000, lambda *args: None)

    def test_dns_resolution(self):
        network, a, b = host_pair()
        server = DnsServer(b.udp, b.addr())
        server.add_record("www.example", b.addr())
        a.use_dns(b.addr())
        results = []
        a.dns_client.resolve("www.example", results.append)
        network.run(until=2.0)
        assert results == [b.addr()]

    def test_dns_nxdomain(self):
        network, a, b = host_pair()
        DnsServer(b.udp, b.addr())
        a.use_dns(b.addr())
        results = []
        a.dns_client.resolve("no.such.name", results.append)
        network.run(until=2.0)
        assert results == [None]

    def test_dns_retry_then_give_up_when_server_dead(self):
        network, a, b = host_pair()
        a.use_dns(b.addr())   # no server bound on b at all -> silent drops
        results = []
        a.dns_client.resolve("anything", results.append)
        network.run(until=10.0)
        assert results == [None]

    def test_connect_by_name_uses_dns(self):
        network, a, b = host_pair()
        server = DnsServer(b.udp, b.addr())
        server.add_record("svc", b.addr())
        b.tcp.listen(80, lambda c: None)
        a.use_dns(b.addr())
        conns = []
        a.connect_by_name("svc", 80, conns.append)
        network.run(until=3.0)
        assert conns and conns[0] is not None
        assert conns[0].established


class TestSctp:
    def _multihomed(self, seed=1):
        network = Network(seed=seed)
        network.add_node("m")
        network.add_node("s")
        network.connect("m", "s", name="p#a")
        network.connect("m", "s", name="p#b")
        fabric = IpFabric(network)
        return network, fabric.host("m"), fabric.host("s")

    def test_association_establishes_with_all_paths(self):
        network, m, s = self._multihomed()
        accepted = []
        s.sctp.listen(7, s.ip.addresses(), accepted.append)
        association = m.sctp.associate(m.ip.addresses(), s.addr("if0"), 7)
        network.run(until=2.0)
        assert association.established
        assert len(association.paths) == 2

    def test_messages_delivered(self):
        network, m, s = self._multihomed()
        accepted = []
        s.sctp.listen(7, s.ip.addresses(), accepted.append)
        association = m.sctp.associate(m.ip.addresses(), s.addr("if0"), 7)
        association.on_established = lambda: [association.send_message(100)
                                              for _ in range(5)]
        network.run(until=5.0)
        assert accepted[0].messages_delivered == 5

    def test_primary_failure_triggers_failover(self):
        network, m, s = self._multihomed()
        accepted = []
        s.sctp.listen(7, s.ip.addresses(), accepted.append)
        association = m.sctp.associate(m.ip.addresses(), s.addr("if0"), 7)
        network.run(until=2.0)
        network.links["p#a"].fail()
        sent = [0]

        def pump():
            if sent[0] < 30:
                association.send_message(100)
                sent[0] += 1
                network.engine.call_later(0.2, pump)
        pump()
        network.run(until=30.0)
        assert association.failover_events
        assert accepted[0].messages_delivered == 30

    def test_heartbeats_detect_silent_path(self):
        network, m, s = self._multihomed()
        s.sctp.listen(7, s.ip.addresses(), lambda a: None)
        association = m.sctp.associate(m.ip.addresses(), s.addr("if0"), 7)
        network.run(until=2.0)
        network.links["p#a"].fail()
        network.run(until=15.0)  # no data at all: heartbeats must notice
        assert not association.paths[0].active
        assert association.primary_index == 1
