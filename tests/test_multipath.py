"""Multipath behaviour of two-step routing (Fig 4's second dividend).

Step two of routing — PoA selection among several (N-1) flows to the same
next hop — gives failover (experiment E4) *and* load balancing.  These
tests drive traffic over parallel links under each path-selection policy.
"""

import pytest

from repro.core import (Dif, DifPolicies, FlowWaiter, MessageFlow,
                        Orchestrator, add_shims, build_dif_over, make_systems,
                        run_until, shim_name_for)
from repro.core.names import ApplicationName
from repro.core.qos import BEST_EFFORT, RELIABLE
from repro.sim.network import Network


def parallel_pair(path_selector, links=2, capacity=2e6, seed=1,
                  keepalive=0.5):
    network = Network(seed=seed)
    network.add_node("a")
    network.add_node("b")
    for index in range(links):
        network.connect("a", "b", name=f"trunk#{index}",
                        capacity_bps=capacity, delay=0.002)
    systems = make_systems(network)
    add_shims(systems, network)
    dif = Dif("d", DifPolicies(path_selector=path_selector,
                               keepalive_interval=keepalive))
    orchestrator = Orchestrator(network)
    build_dif_over(orchestrator, dif, systems, adjacencies=[
        ("a", "b", shim_name_for(f"trunk#{index}")) for index in range(links)])
    orchestrator.run(timeout=30)
    return network, systems, dif


def drive_cbr(network, systems, rate_bps, duration=3.0, message=1000):
    """Paced unreliable traffic a→b; returns messages delivered."""
    received = []

    def on_flow(flow):
        mf = MessageFlow(network.engine, flow)
        mf.set_message_receiver(lambda data: received.append(network.engine.now))
        drive_cbr._keep = mf
    systems["b"].register_app(ApplicationName("sink"), on_flow)
    network.run(until=network.engine.now + 0.5)
    flow = systems["a"].allocate_flow(ApplicationName("src"),
                                      ApplicationName("sink"),
                                      qos=BEST_EFFORT)
    waiter = FlowWaiter(flow)
    run_until(network, waiter.done, timeout=10)
    assert waiter.ok
    sender = MessageFlow(network.engine, flow)
    period = message * 8 / rate_bps
    sent = [0]
    stop_at = network.engine.now + duration

    def pump():
        if network.engine.now < stop_at:
            sender.send_message(b"x" * message)
            sent[0] += 1
            network.engine.call_later(period, pump)
    pump()
    network.run(until=stop_at + 1.0)
    return sent[0], len(received)


class TestLoadBalancing:
    def test_round_robin_uses_both_links(self):
        network, systems, _dif = parallel_pair("round-robin")
        drive_cbr(network, systems, rate_bps=1e6)
        trunk0 = network.links["trunk#0"]
        trunk1 = network.links["trunk#1"]
        # both directions of a->b saw traffic on both trunks
        assert trunk0.frames_delivered[0] > 10
        assert trunk1.frames_delivered[0] > 10

    def test_first_alive_pins_to_primary(self):
        network, systems, _dif = parallel_pair("first-alive")
        drive_cbr(network, systems, rate_bps=1e6)
        trunk0 = network.links["trunk#0"]
        trunk1 = network.links["trunk#1"]
        data_frames = [trunk0.frames_delivered[0], trunk1.frames_delivered[0]]
        # one trunk carries the data; the other only keepalives
        assert max(data_frames) > 10 * min(data_frames)

    def test_round_robin_carries_load_beyond_one_link(self):
        # offered 3 Mb/s over 2x2 Mb/s trunks: RR succeeds, first-alive
        # saturates its single choice and drops
        _n1, s1, _d1 = (None, None, None)
        network_rr, systems_rr, _ = parallel_pair("round-robin")
        sent_rr, got_rr = drive_cbr(network_rr, systems_rr, rate_bps=3e6)
        network_fa, systems_fa, _ = parallel_pair("first-alive")
        sent_fa, got_fa = drive_cbr(network_fa, systems_fa, rate_bps=3e6)
        assert got_rr / sent_rr > 0.95
        assert got_fa / sent_fa < 0.92    # single link saturated: tail dropped
        assert got_rr > got_fa

    def test_hashed_keeps_one_flow_on_one_path(self):
        network, systems, _dif = parallel_pair("hashed")
        drive_cbr(network, systems, rate_bps=1e6)
        trunk0 = network.links["trunk#0"]
        trunk1 = network.links["trunk#1"]
        data_frames = sorted([trunk0.frames_delivered[0],
                              trunk1.frames_delivered[0]])
        # a single flow hashes to a single path
        assert data_frames[1] > 10 * max(1, data_frames[0])


class TestMultipathFailover:
    def test_round_robin_survives_one_trunk_loss(self):
        network, systems, _dif = parallel_pair("round-robin", keepalive=0.1)
        received = []

        def on_flow(flow):
            mf = MessageFlow(network.engine, flow)
            mf.set_message_receiver(lambda data: received.append(
                network.engine.now))
            on_flow._keep = mf
        systems["b"].register_app(ApplicationName("sink"), on_flow)
        network.run(until=network.engine.now + 0.5)
        flow = systems["a"].allocate_flow(ApplicationName("src"),
                                          ApplicationName("sink"),
                                          qos=RELIABLE)
        waiter = FlowWaiter(flow)
        run_until(network, waiter.done, timeout=10)
        sender = MessageFlow(network.engine, flow)
        sent = [0]

        def pump():
            if sent[0] < 80:
                sender.send_message(b"m")
                sent[0] += 1
                network.engine.call_later(0.05, pump)
        pump()
        network.engine.call_later(1.0, network.links["trunk#0"].fail)
        run_until(network, lambda: len(received) >= 80, timeout=60)
        assert len(received) >= 80

    def test_three_parallel_links_all_carry(self):
        network, systems, _dif = parallel_pair("round-robin", links=3)
        drive_cbr(network, systems, rate_bps=1.5e6)
        for index in range(3):
            assert network.links[f"trunk#{index}"].frames_delivered[0] > 5
