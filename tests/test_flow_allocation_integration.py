"""Integration tests for flow allocation (IAP) and end-to-end data (§5.3)."""

import pytest

from repro.core import (AllowList, Dif, DifPolicies, FlowWaiter, MessageFlow,
                        Orchestrator, add_shims, build_dif_over, make_systems,
                        run_until, shim_between)
from repro.core.names import ApplicationName
from repro.core.qos import BEST_EFFORT, RELIABLE, QosCube
from repro.sim.network import Network


def build_pair(policies=None, seed=1):
    network = Network(seed=seed)
    network.add_node("a")
    network.add_node("b")
    network.connect("a", "b")
    systems = make_systems(network)
    add_shims(systems, network)
    dif = Dif("d", policies or DifPolicies(keepalive_interval=5.0))
    orchestrator = Orchestrator(network)
    build_dif_over(orchestrator, dif, systems,
                   adjacencies=[("a", "b", shim_between(network, "a", "b"))])
    orchestrator.run(timeout=30)
    return network, systems, dif


class TestAllocation:
    def test_allocate_by_name_returns_port_ids(self):
        network, systems, _dif = build_pair()
        inbound = []
        systems["b"].register_app(ApplicationName("svc"), inbound.append)
        network.run(until=network.engine.now + 0.5)
        flow = systems["a"].allocate_flow(ApplicationName("cli"),
                                          ApplicationName("svc"))
        waiter = FlowWaiter(flow)
        assert run_until(network, waiter.done, timeout=10)
        assert waiter.ok
        assert inbound and inbound[0].port_id != flow.port_id or True
        # neither side's flow ever exposes an address
        assert not hasattr(flow, "address")

    def test_unknown_destination_fails_after_retries(self):
        network, systems, _dif = build_pair(
            DifPolicies(allocate_retries=2, allocate_retry_delay=0.1))
        flow = systems["a"].allocate_flow(ApplicationName("cli"),
                                          ApplicationName("nobody"),
                                          dif_name="d")
        waiter = FlowWaiter(flow)
        run_until(network, waiter.done, timeout=20)
        assert not waiter.ok
        assert waiter.reason == "destination-unknown"

    def test_registration_race_covered_by_retries(self):
        network, systems, _dif = build_pair(
            DifPolicies(allocate_retries=8, allocate_retry_delay=0.2))
        # allocate BEFORE the app registers; registration happens shortly
        flow = systems["a"].allocate_flow(ApplicationName("cli"),
                                          ApplicationName("late-svc"),
                                          dif_name="d")
        waiter = FlowWaiter(flow)
        network.engine.call_later(0.5, lambda: systems["b"].register_app(
            ApplicationName("late-svc"), lambda f: None))
        run_until(network, waiter.done, timeout=20)
        assert waiter.ok

    def test_access_control_denies_unlisted_source(self):
        policies = DifPolicies(access=AllowList([ApplicationName("friend")]))
        network, systems, _dif = build_pair(policies)
        systems["b"].register_app(ApplicationName("svc"), lambda f: None)
        network.run(until=network.engine.now + 0.5)
        denied = systems["a"].allocate_flow(ApplicationName("stranger"),
                                            ApplicationName("svc"))
        denied_waiter = FlowWaiter(denied)
        allowed = systems["a"].allocate_flow(ApplicationName("friend"),
                                             ApplicationName("svc"))
        allowed_waiter = FlowWaiter(allowed)
        run_until(network, lambda: denied_waiter.done() and allowed_waiter.done(),
                  timeout=20)
        assert not denied_waiter.ok and denied_waiter.reason == "access-denied"
        assert allowed_waiter.ok

    def test_impossible_qos_fails_fast(self):
        network, systems, _dif = build_pair()
        systems["b"].register_app(ApplicationName("svc"), lambda f: None)
        network.run(until=network.engine.now + 0.5)
        impossible = QosCube("impossible", max_delay=1e-12)
        flow = systems["a"].allocate_flow(ApplicationName("cli"),
                                          ApplicationName("svc"),
                                          qos=impossible)
        waiter = FlowWaiter(flow)
        run_until(network, waiter.done, timeout=10)
        assert not waiter.ok

    def test_not_enrolled_system_cannot_allocate(self):
        network = Network(seed=1)
        network.add_node("a")
        network.add_node("b")
        network.connect("a", "b")
        systems = make_systems(network)
        add_shims(systems, network)
        dif = Dif("d")
        systems["a"].create_ipcp(dif)  # never enrolled/bootstrapped
        flow = systems["a"].allocate_flow(ApplicationName("cli"),
                                          ApplicationName("svc"),
                                          dif_name="d")
        waiter = FlowWaiter(flow)
        run_until(network, waiter.done, timeout=10)
        assert not waiter.ok and waiter.reason == "not-enrolled"


class TestDataAndDeallocation:
    def _allocated(self):
        network, systems, dif = build_pair()
        inbound = []
        systems["b"].register_app(ApplicationName("svc"), inbound.append)
        network.run(until=network.engine.now + 0.5)
        flow = systems["a"].allocate_flow(ApplicationName("cli"),
                                          ApplicationName("svc"), qos=RELIABLE)
        waiter = FlowWaiter(flow)
        run_until(network, waiter.done, timeout=10)
        assert waiter.ok
        return network, systems, dif, flow, inbound[0]

    def test_reliable_bidirectional_messages(self):
        network, systems, _dif, out_flow, in_flow = self._allocated()
        out_mf = MessageFlow(network.engine, out_flow)
        in_mf = MessageFlow(network.engine, in_flow)
        got_b, got_a = [], []
        in_mf.set_message_receiver(got_b.append)
        out_mf.set_message_receiver(got_a.append)
        out_mf.send_message(b"hello" * 1000)   # multi-fragment
        run_until(network, lambda: got_b, timeout=10)
        in_mf.send_message(b"world")
        run_until(network, lambda: got_a, timeout=10)
        assert got_b == [b"hello" * 1000]
        assert got_a == [b"world"]

    def test_deallocate_releases_both_ends(self):
        network, systems, _dif, out_flow, in_flow = self._allocated()
        released = []
        in_flow.on_deallocated = lambda f: released.append(1)
        out_flow.deallocate()
        network.run(until=network.engine.now + 2.0)
        assert released
        assert systems["a"].ipcp("d").flow_allocator.active_flow_count() == 0
        assert systems["b"].ipcp("d").flow_allocator.active_flow_count() == 0

    def test_multiple_concurrent_flows_demuxed_by_cep(self):
        network, systems, _dif = build_pair()
        sinks = {}

        def on_flow(flow):
            mf = MessageFlow(network.engine, flow)
            box = []
            mf.set_message_receiver(box.append)
            sinks[str(flow.remote_app)] = (mf, box)
        systems["b"].register_app(ApplicationName("svc"), on_flow)
        network.run(until=network.engine.now + 0.5)
        flows = {}
        for client in ("c1", "c2", "c3"):
            flow = systems["a"].allocate_flow(ApplicationName(client),
                                              ApplicationName("svc"),
                                              qos=RELIABLE)
            flows[client] = (FlowWaiter(flow), MessageFlow(network.engine, flow))
        run_until(network, lambda: all(w.done() for w, _ in flows.values()),
                  timeout=15)
        for client, (waiter, mf) in flows.items():
            assert waiter.ok
            mf.send_message(client.encode())
        run_until(network, lambda: all(box for _mf, box in sinks.values()),
                  timeout=15)
        for client in ("c1", "c2", "c3"):
            assert sinks[client][1] == [client.encode()]

    def test_stray_pdus_counted_not_crashing(self):
        network, systems, _dif, out_flow, in_flow = self._allocated()
        from repro.core.pdu import DataPdu
        b_ipcp = systems["b"].ipcp("d")
        a_addr = systems["a"].ipcp("d").address
        stray = DataPdu(a_addr, b_ipcp.address, 77, 999, 0, b"x", 1)
        b_ipcp.flow_allocator.handle_data(stray)
        assert b_ipcp.flow_allocator.stray_pdus == 1
