"""Unit tests for the discrete-event engine."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.engine import (Engine, EngineClock, PeriodicTask,
                              SimulationError, Timer)


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert Engine().now == 0.0

    def test_clock_starts_at_given_time(self):
        assert Engine(start_time=5.0).now == 5.0

    def test_call_at_runs_at_time(self):
        engine = Engine()
        seen = []
        engine.call_at(1.5, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [1.5]

    def test_call_later_relative(self):
        engine = Engine(start_time=2.0)
        seen = []
        engine.call_later(0.5, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [2.5]

    def test_call_soon_runs_at_current_time(self):
        engine = Engine()
        seen = []
        engine.call_at(1.0, lambda: engine.call_soon(
            lambda: seen.append(engine.now)))
        engine.run()
        assert seen == [1.0]

    def test_args_passed_through(self):
        engine = Engine()
        seen = []
        engine.call_at(1.0, lambda a, b: seen.append((a, b)), "x", 2)
        engine.run()
        assert seen == [("x", 2)]

    def test_scheduling_in_past_rejected(self):
        engine = Engine(start_time=10.0)
        with pytest.raises(SimulationError):
            engine.call_at(5.0, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Engine().call_later(-1.0, lambda: None)

    def test_fifo_order_for_simultaneous_events(self):
        engine = Engine()
        seen = []
        for index in range(5):
            engine.call_at(1.0, lambda i=index: seen.append(i))
        engine.run()
        assert seen == [0, 1, 2, 3, 4]

    def test_events_run_in_time_order_regardless_of_insertion(self):
        engine = Engine()
        seen = []
        for when in (3.0, 1.0, 2.0):
            engine.call_at(when, lambda w=when: seen.append(w))
        engine.run()
        assert seen == [1.0, 2.0, 3.0]

    @given(st.lists(st.floats(min_value=0.0, max_value=1e6,
                              allow_nan=False), min_size=1, max_size=50))
    def test_property_execution_order_is_sorted(self, times):
        engine = Engine()
        seen = []
        for when in times:
            engine.call_at(when, lambda w=when: seen.append(w))
        engine.run()
        assert seen == sorted(times)

    def test_cancellation_skips_event(self):
        engine = Engine()
        seen = []
        event = engine.call_at(1.0, lambda: seen.append("cancelled"))
        engine.call_at(2.0, lambda: seen.append("kept"))
        event.cancel()
        engine.run()
        assert seen == ["kept"]

    def test_cancelled_event_inactive(self):
        engine = Engine()
        event = engine.call_at(1.0, lambda: None)
        assert event.active
        event.cancel()
        assert not event.active


class TestRunControl:
    def test_run_until_advances_clock_to_horizon(self):
        engine = Engine()
        engine.call_at(10.0, lambda: None)
        assert engine.run(until=5.0) == 5.0
        assert engine.now == 5.0

    def test_run_until_then_resume(self):
        engine = Engine()
        seen = []
        engine.call_at(10.0, lambda: seen.append(True))
        engine.run(until=5.0)
        assert seen == []
        engine.run()
        assert seen == [True]

    def test_run_with_empty_queue_advances_to_until(self):
        engine = Engine()
        engine.run(until=7.0)
        assert engine.now == 7.0

    def test_max_events_bounds_execution(self):
        engine = Engine()
        seen = []
        for index in range(10):
            engine.call_at(float(index + 1), lambda i=index: seen.append(i))
        engine.run(max_events=3)
        assert seen == [0, 1, 2]

    def test_stop_inside_callback(self):
        engine = Engine()
        seen = []
        engine.call_at(1.0, lambda: (seen.append(1), engine.stop()))
        engine.call_at(2.0, lambda: seen.append(2))
        engine.run()
        assert seen == [1]
        engine.run()
        assert seen == [1, 2]

    def test_reentrant_run_rejected(self):
        engine = Engine()

        def reenter():
            with pytest.raises(SimulationError):
                engine.run()
        engine.call_at(1.0, reenter)
        engine.run()

    def test_events_processed_counts_executions_only(self):
        engine = Engine()
        event = engine.call_at(1.0, lambda: None)
        engine.call_at(2.0, lambda: None)
        event.cancel()
        engine.run()
        assert engine.events_processed == 1

    def test_pending_count_excludes_cancelled(self):
        engine = Engine()
        event = engine.call_at(1.0, lambda: None)
        engine.call_at(2.0, lambda: None)
        event.cancel()
        assert engine.pending_count() == 1

    def test_pending_count_double_cancel_counts_once(self):
        engine = Engine()
        event = engine.call_at(1.0, lambda: None)
        engine.call_at(2.0, lambda: None)
        event.cancel()
        event.cancel()
        assert engine.pending_count() == 1

    def test_pending_count_after_execution(self):
        engine = Engine()
        event = engine.call_at(1.0, lambda: None)
        engine.call_at(2.0, lambda: None)
        engine.run(max_events=1)
        assert engine.pending_count() == 1
        # cancelling an already-executed event must not corrupt the counter
        event.cancel()
        assert engine.pending_count() == 1

    def _live_scan(self, engine):
        # pending events live in per-timestamp batch lists
        return sum(1 for batch in engine._batches.values()
                   for ev in batch if ev.active and not ev._expired)

    def test_pending_counter_matches_heap_scan(self):
        # the O(1) counter must agree with a full heap scan through an
        # arbitrary schedule/cancel/run interleaving
        engine = Engine()
        events = [engine.call_at(float(i), lambda: None) for i in range(10)]
        assert engine.pending_count() == self._live_scan(engine) == 10
        for event in events[::3]:
            event.cancel()
        assert engine.pending_count() == self._live_scan(engine)
        engine.run(max_events=3)
        assert engine.pending_count() == self._live_scan(engine)
        events[8].cancel()
        events[8].cancel()
        assert engine.pending_count() == self._live_scan(engine)
        engine.run()
        assert engine.pending_count() == self._live_scan(engine) == 0

    @given(st.lists(st.tuples(st.floats(min_value=0.0, max_value=100.0,
                                        allow_nan=False),
                              st.booleans()), min_size=1, max_size=40))
    def test_property_pending_counter_consistency(self, plan):
        engine = Engine()
        events = []
        for when, cancel in plan:
            events.append((engine.call_at(when, lambda: None), cancel))
        for event, cancel in events:
            if cancel:
                event.cancel()
        assert engine.pending_count() == self._live_scan(engine)
        engine.run(max_events=len(events) // 2)
        assert engine.pending_count() == self._live_scan(engine)
        engine.run()
        assert engine.pending_count() == self._live_scan(engine) == 0


class TestTimer:
    def test_fires_after_delay(self):
        engine = Engine()
        seen = []
        timer = Timer(engine, lambda: seen.append(engine.now))
        timer.start(2.0)
        engine.run()
        assert seen == [2.0]

    def test_restart_resets_deadline(self):
        engine = Engine()
        seen = []
        timer = Timer(engine, lambda: seen.append(engine.now))
        timer.start(2.0)
        engine.call_at(1.0, lambda: timer.start(2.0))
        engine.run()
        assert seen == [3.0]

    def test_cancel_prevents_firing(self):
        engine = Engine()
        seen = []
        timer = Timer(engine, lambda: seen.append(True))
        timer.start(2.0)
        timer.cancel()
        engine.run()
        assert seen == []

    def test_cancel_idempotent(self):
        timer = Timer(Engine(), lambda: None)
        timer.cancel()
        timer.cancel()

    def test_running_flag(self):
        engine = Engine()
        timer = Timer(engine, lambda: None)
        assert not timer.running
        timer.start(1.0)
        assert timer.running
        engine.run()
        assert not timer.running


class TestPeriodicTask:
    def test_fires_repeatedly(self):
        engine = Engine()
        seen = []
        task = PeriodicTask(engine, 1.0, lambda: seen.append(engine.now))
        task.start()
        engine.run(until=3.5)
        assert seen == [1.0, 2.0, 3.0]

    def test_initial_delay_override(self):
        engine = Engine()
        seen = []
        task = PeriodicTask(engine, 1.0, lambda: seen.append(engine.now))
        task.start(initial_delay=0.25)
        engine.run(until=1.5)
        assert seen == [0.25, 1.25]

    def test_stop_ceases_firing(self):
        engine = Engine()
        seen = []
        task = PeriodicTask(engine, 1.0, lambda: seen.append(engine.now))
        task.start()
        engine.call_at(2.5, task.stop)
        engine.run(until=10.0)
        assert seen == [1.0, 2.0]

    def test_non_positive_period_rejected(self):
        with pytest.raises(SimulationError):
            PeriodicTask(Engine(), 0.0, lambda: None)

    def test_running_flag(self):
        engine = Engine()
        task = PeriodicTask(engine, 1.0, lambda: None)
        assert not task.running
        task.start()
        assert task.running
        task.stop()
        assert not task.running

    def test_jitter_applied(self):
        engine = Engine()
        seen = []
        task = PeriodicTask(engine, 1.0, lambda: seen.append(engine.now),
                            jitter_fn=lambda: 0.1)
        task.start()
        engine.run(until=3.5)
        # first firing after plain period, subsequent with +0.1 jitter
        assert seen == pytest.approx([1.0, 2.1, 3.2])


class TestEngineClock:
    def test_read_only_view_tracks_time(self):
        engine = Engine()
        clock = EngineClock(engine)
        engine.call_at(4.0, lambda: None)
        engine.run()
        assert clock.now == 4.0
