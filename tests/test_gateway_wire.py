"""Gateway wire layer: round trips and malformed-input fuzz.

Every way a peer can hand the gateway garbage — truncated header, wrong
magic, unknown version, trailing bytes, an oversize or impossible TCP
length prefix, a decodable value that is not a shim frame — must
surface as :class:`FrameFormatError`, the single failure mode the
socket readers contain.
"""

import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.codec import encode
from repro.core.delimiting import Fragment
from repro.shard.framing import FrameFormatError, pack_frame, unpack_frame
from repro.gateway.wire import (LENGTH_PREFIX, MAX_FRAME_BYTES,
                                StreamUnframer, decode_shim_frame,
                                frame_from_wire, frame_to_wire,
                                stream_record)

FRAMES = [
    ("alloc", 2, ("echo-client", "echo-server"), 16),
    ("alloc-ok", 2, None, 0),
    ("alloc-err", 4, "no-such-app", 12),
    ("data", 2, Fragment(7, 0, True, b"payload bytes"), 21),
    ("dealloc", 2, None, 0),
]


class TestRoundTrip:
    @pytest.mark.parametrize("frame", FRAMES,
                             ids=[frame[0] for frame in FRAMES])
    def test_shim_frames_round_trip(self, frame):
        kind, flow_id, payload, size = decode_shim_frame(
            frame_to_wire(frame))
        assert (kind, flow_id, size) == (frame[0], frame[1], frame[3])
        if isinstance(frame[2], Fragment):
            assert isinstance(payload, Fragment)
            assert payload.data == frame[2].data
            assert (payload.message_id, payload.index, payload.last) == (
                frame[2].message_id, frame[2].index, frame[2].last)
        else:
            assert payload == frame[2]

    def test_wire_bytes_are_canonical(self):
        frame = FRAMES[0]
        assert frame_to_wire(frame) == frame_to_wire(frame)

    def test_fragment_codec_round_trip(self):
        fragment = Fragment(3, 1, False, b"\x00\xffmid")
        encoded = encode(fragment)
        assert encoded[0] == "FR"
        rebuilt = frame_from_wire(pack_frame(encoded))
        assert isinstance(rebuilt, Fragment)
        assert rebuilt.data == fragment.data

    def test_live_object_payload_raises_at_sender(self):
        with pytest.raises(TypeError):   # CodecError is a TypeError
            frame_to_wire(("data", 2, object(), 8))


class TestMalformedFrames:
    def test_empty_buffer(self):
        with pytest.raises(FrameFormatError):
            unpack_frame(b"")

    def test_one_byte_header(self):
        with pytest.raises(FrameFormatError):
            unpack_frame(b"\xb8")

    def test_bad_magic(self):
        buf = bytearray(frame_to_wire(FRAMES[0]))
        buf[0] = 0xB7   # the *batch* magic — close, but not a frame
        with pytest.raises(FrameFormatError, match="magic"):
            frame_from_wire(bytes(buf))

    def test_bad_version(self):
        buf = bytearray(frame_to_wire(FRAMES[0]))
        buf[1] = 99
        with pytest.raises(FrameFormatError, match="version"):
            frame_from_wire(bytes(buf))

    def test_trailing_bytes(self):
        with pytest.raises(FrameFormatError, match="trailing"):
            frame_from_wire(frame_to_wire(FRAMES[0]) + b"x")

    def test_truncated_body(self):
        buf = frame_to_wire(FRAMES[0])
        for cut in range(2, len(buf)):
            with pytest.raises(FrameFormatError):
                frame_from_wire(buf[:cut])

    def test_unknown_value_tag(self):
        with pytest.raises(FrameFormatError):
            frame_from_wire(b"\xb8\x01Z")

    @pytest.mark.parametrize("value", [
        "not a tuple",
        42,
        ("data", 2, None),                    # wrong arity
        ("data", 2, None, 0, "extra"),
        (5, 2, None, 0),                      # non-str kind
        ("data", "two", None, 0),             # non-int flow id
        ("data", True, None, 0),              # bool is not a flow id
        ("data", 2, None, "zero"),            # non-int size
        ("data", 2, None, False),
    ])
    def test_decodable_but_not_a_shim_frame(self, value):
        with pytest.raises(FrameFormatError, match="not a shim frame"):
            decode_shim_frame(pack_frame(encode(value)))

    @given(st.binary(max_size=64))
    @settings(max_examples=200, deadline=None)
    def test_arbitrary_bytes_never_raise_anything_else(self, buf):
        try:
            decode_shim_frame(buf)
        except FrameFormatError:
            pass


class TestStreamFraming:
    def test_single_record_round_trip(self):
        unframer = StreamUnframer()
        payload = frame_to_wire(FRAMES[0])
        assert unframer.feed(stream_record(payload)) == [payload]
        assert unframer.buffered == 0

    def test_byte_at_a_time(self):
        unframer = StreamUnframer()
        records = b"".join(stream_record(frame_to_wire(f)) for f in FRAMES)
        out = []
        for index in range(len(records)):
            out.extend(unframer.feed(records[index:index + 1]))
        assert out == [frame_to_wire(f) for f in FRAMES]
        assert unframer.buffered == 0

    def test_coalesced_records_split_apart(self):
        unframer = StreamUnframer()
        records = b"".join(stream_record(frame_to_wire(f)) for f in FRAMES)
        assert unframer.feed(records) == [frame_to_wire(f) for f in FRAMES]

    def test_partial_record_is_buffered(self):
        unframer = StreamUnframer()
        record = stream_record(frame_to_wire(FRAMES[0]))
        assert unframer.feed(record[:-1]) == []
        assert unframer.buffered == len(record) - 1
        assert unframer.feed(record[-1:]) == [frame_to_wire(FRAMES[0])]

    def test_oversize_length_prefix(self):
        unframer = StreamUnframer()
        with pytest.raises(FrameFormatError, match="oversize"):
            unframer.feed(LENGTH_PREFIX.pack(MAX_FRAME_BYTES + 1))

    def test_tiny_length_prefix(self):
        unframer = StreamUnframer()
        with pytest.raises(FrameFormatError, match="cannot hold"):
            unframer.feed(LENGTH_PREFIX.pack(1))

    def test_zero_length_prefix(self):
        unframer = StreamUnframer()
        with pytest.raises(FrameFormatError):
            unframer.feed(LENGTH_PREFIX.pack(0))

    def test_oversize_frame_rejected_at_sender(self):
        with pytest.raises(FrameFormatError, match="exceeds"):
            stream_record(b"x" * (MAX_FRAME_BYTES + 1))

    @given(st.binary(min_size=4, max_size=64))
    @settings(max_examples=200, deadline=None)
    def test_arbitrary_stream_bytes_contained(self, data):
        unframer = StreamUnframer(max_frame=1024)
        try:
            for buf in unframer.feed(data):
                try:
                    decode_shim_frame(buf)
                except FrameFormatError:
                    pass
        except FrameFormatError:
            pass
