"""Tests for admission control, remote RIB reads, and the pub/sub app."""

import pytest

from repro.apps.pubsub import Broker, PubSubClient
from repro.core import (Dif, DifPolicies, FlowWaiter, Orchestrator, QosCube,
                        add_shims, build_dif_over, make_systems, run_until,
                        shim_between)
from repro.core.names import ApplicationName
from repro.sim.network import Network

VOICE = QosCube("guaranteed-voice", reliable=False, avg_bandwidth=3e6,
                priority=0)


def build_pair(policies, seed=1):
    network = Network(seed=seed)
    network.add_node("a")
    network.add_node("b")
    network.connect("a", "b")
    systems = make_systems(network)
    add_shims(systems, network)
    dif = Dif("d", policies)
    orchestrator = Orchestrator(network)
    build_dif_over(orchestrator, dif, systems,
                   adjacencies=[("a", "b", shim_between(network, "a", "b"))])
    orchestrator.run(timeout=30)
    return network, systems, dif


def guaranteed_policies(capacity=1e7):
    cubes = dict(DifPolicies().qos_cubes)
    cubes[VOICE.name] = VOICE
    return DifPolicies(qos_cubes=cubes, admission_capacity_bps=capacity)


class TestAdmissionControl:
    def _allocate(self, network, systems, count):
        waiters = []
        for index in range(count):
            flow = systems["a"].allocate_flow(
                ApplicationName(f"caller-{index}"), ApplicationName("svc"),
                qos=VOICE, dif_name="d")
            waiters.append(FlowWaiter(flow))
        run_until(network, lambda: all(w.done() for w in waiters), timeout=30)
        return waiters

    def test_flows_admitted_within_budget(self):
        network, systems, _dif = build_pair(guaranteed_policies(1e7))
        systems["b"].register_app(ApplicationName("svc"), lambda f: None)
        network.run(until=network.engine.now + 0.5)
        waiters = self._allocate(network, systems, 3)   # 9 of 10 Mb/s
        assert all(w.ok for w in waiters)

    def test_flow_beyond_budget_denied(self):
        network, systems, dif = build_pair(guaranteed_policies(1e7))
        systems["b"].register_app(ApplicationName("svc"), lambda f: None)
        network.run(until=network.engine.now + 0.5)
        waiters = self._allocate(network, systems, 4)   # 12 of 10 Mb/s
        outcomes = sorted(w.ok for w in waiters)
        assert outcomes == [False, True, True, True]
        denied = [w for w in waiters if not w.ok][0]
        assert denied.reason == "admission-denied"
        allocator = systems["a"].ipcp("d").flow_allocator
        assert allocator.allocations_denied_admission == 1
        assert allocator.committed_bandwidth_bps() == pytest.approx(9e6)

    def test_deallocation_frees_budget(self):
        network, systems, _dif = build_pair(guaranteed_policies(1e7))
        systems["b"].register_app(ApplicationName("svc"), lambda f: None)
        network.run(until=network.engine.now + 0.5)
        waiters = self._allocate(network, systems, 3)
        assert all(w.ok for w in waiters)
        waiters[0].flow.deallocate()
        network.run(until=network.engine.now + 1.0)
        late = self._allocate(network, systems, 1)
        assert late[0].ok

    def test_best_effort_flows_unconstrained(self):
        network, systems, _dif = build_pair(guaranteed_policies(1e6))
        systems["b"].register_app(ApplicationName("svc"), lambda f: None)
        network.run(until=network.engine.now + 0.5)
        waiters = []
        for index in range(10):
            flow = systems["a"].allocate_flow(
                ApplicationName(f"be-{index}"), ApplicationName("svc"),
                dif_name="d")
            waiters.append(FlowWaiter(flow))
        run_until(network, lambda: all(w.done() for w in waiters), timeout=30)
        assert all(w.ok for w in waiters)

    def test_no_capacity_means_no_admission_control(self):
        network, systems, _dif = build_pair(
            guaranteed_policies(capacity=None))
        systems["b"].register_app(ApplicationName("svc"), lambda f: None)
        network.run(until=network.engine.now + 0.5)
        waiters = self._allocate(network, systems, 6)
        assert all(w.ok for w in waiters)


class TestRemoteRibRead:
    def _pair(self):
        return build_pair(DifPolicies(keepalive_interval=5.0))

    def _read(self, network, systems, obj):
        a = systems["a"].ipcp("d")
        b = systems["b"].ipcp("d")
        replies = []
        a.remote_read(b.address, obj, replies.append)
        run_until(network, lambda: replies, timeout=10)
        return replies[0]

    def test_read_peer_address_object(self):
        network, systems, _dif = self._pair()
        reply = self._read(network, systems, "/ipcp/name")
        assert reply is not None and reply.ok
        assert reply.value == "d.ipcp.b"

    def test_read_peer_routing_table(self):
        network, systems, _dif = self._pair()
        reply = self._read(network, systems, "/routing/table-size")
        assert reply.ok and reply.value == 1

    def test_read_peer_directory_names(self):
        network, systems, _dif = self._pair()
        systems["b"].register_app(ApplicationName("svc"), lambda f: None)
        network.run(until=network.engine.now + 0.5)
        reply = self._read(network, systems, "/directory/names")
        assert reply.ok and "svc" in reply.value

    def test_read_peer_rmt_stats(self):
        network, systems, _dif = self._pair()
        reply = self._read(network, systems, "/stats/rmt")
        assert reply.ok
        assert set(reply.value) == {"relayed", "delivered", "dropped"}

    def test_read_unknown_object_not_found(self):
        network, systems, _dif = self._pair()
        reply = self._read(network, systems, "/no/such/thing")
        assert reply is not None and not reply.ok

    def test_read_neighbors(self):
        network, systems, _dif = self._pair()
        a_addr = systems["a"].ipcp("d").address
        reply = self._read(network, systems, "/neighbors")
        assert reply.ok and reply.value == [str(a_addr)]


class TestPubSub:
    def _world(self):
        network = Network(seed=5)
        for name in ("broker-host", "pub", "sub1", "sub2"):
            network.add_node(name)
        for name in ("pub", "sub1", "sub2"):
            network.connect("broker-host", name)
        systems = make_systems(network)
        add_shims(systems, network)
        dif = Dif("d", DifPolicies(keepalive_interval=5.0))
        orchestrator = Orchestrator(network)
        build_dif_over(orchestrator, dif, systems, adjacencies=[
            ("broker-host", name, shim_between(network, "broker-host", name))
            for name in ("pub", "sub1", "sub2")])
        orchestrator.run(timeout=60)
        broker = Broker(systems["broker-host"])
        network.run(until=network.engine.now + 0.5)
        return network, systems, broker

    def test_publication_fans_out_to_subscribers(self):
        network, systems, broker = self._world()
        sub1 = PubSubClient(systems["sub1"], "sub-one")
        sub2 = PubSubClient(systems["sub2"], "sub-two")
        publisher = PubSubClient(systems["pub"], "pub-one")
        run_until(network, lambda: sub1.ready and sub2.ready and
                  publisher.ready, timeout=15)
        sub1.subscribe("alerts")
        sub2.subscribe("alerts")
        network.run(until=network.engine.now + 1.0)
        assert broker.subscriber_count("alerts") == 2
        publisher.publish("alerts", "fire drill")
        run_until(network, lambda: sub1.events and sub2.events, timeout=15)
        assert sub1.events[0]["data"] == "fire drill"
        assert sub2.events[0]["data"] == "fire drill"
        assert publisher.events == []   # publishers don't hear themselves

    def test_topics_are_isolated(self):
        network, systems, broker = self._world()
        sub1 = PubSubClient(systems["sub1"], "sub-one")
        publisher = PubSubClient(systems["pub"], "pub-one")
        run_until(network, lambda: sub1.ready and publisher.ready, timeout=15)
        sub1.subscribe("sports")
        network.run(until=network.engine.now + 1.0)
        publisher.publish("politics", "nope")
        network.run(until=network.engine.now + 2.0)
        assert sub1.events == []

    def test_unsubscribe_stops_events(self):
        network, systems, broker = self._world()
        sub1 = PubSubClient(systems["sub1"], "sub-one")
        publisher = PubSubClient(systems["pub"], "pub-one")
        run_until(network, lambda: sub1.ready and publisher.ready, timeout=15)
        sub1.subscribe("t")
        network.run(until=network.engine.now + 1.0)
        sub1.unsubscribe("t")
        network.run(until=network.engine.now + 1.0)
        publisher.publish("t", "x")
        network.run(until=network.engine.now + 2.0)
        assert sub1.events == []
