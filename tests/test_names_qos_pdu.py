"""Unit tests for naming, QoS cubes, and PDU formats."""

import pytest
from hypothesis import given, strategies as st

from repro.core.names import Address, ApplicationName, DifName, PortId
from repro.core.pdu import (ACK, CONTROL_HEADER_BYTES, DATA_HEADER_BYTES,
                            KEEPALIVE, MGMT_HEADER_BYTES, ControlPdu, DataPdu,
                            ManagementPdu)
from repro.core.qos import (BEST_EFFORT, BULK, DEFAULT_CUBES, LOW_LATENCY,
                            RELIABLE, QosCube, resolve_cube)
from repro.core.riep import RiepMessage


class TestApplicationName:
    def test_equality_by_process_and_instance(self):
        assert ApplicationName("x") == ApplicationName("x")
        assert ApplicationName("x", "2") != ApplicationName("x", "1")

    def test_hashable(self):
        assert len({ApplicationName("a"), ApplicationName("a")}) == 1

    def test_str_roundtrip_default_instance(self):
        name = ApplicationName("video-server")
        assert ApplicationName.parse(str(name)) == name

    def test_str_roundtrip_with_instance(self):
        name = ApplicationName("worker", "7")
        assert str(name) == "worker/7"
        assert ApplicationName.parse("worker/7") == name

    @given(st.text(alphabet=st.characters(blacklist_characters="/",
                                          blacklist_categories=("Cs",)),
                   min_size=1),
           st.text(alphabet=st.characters(blacklist_categories=("Cs",)),
                   min_size=1))
    def test_property_parse_inverts_str(self, process, instance):
        name = ApplicationName(process, instance)
        assert ApplicationName.parse(str(name)) == name

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            ApplicationName("")


class TestAddress:
    def test_flat_address(self):
        address = Address(7)
        assert address.is_flat
        assert str(address) == "7"

    def test_topological_address(self):
        address = Address(2, 0, 13)
        assert not address.is_flat
        assert str(address) == "2.0.13"

    def test_prefix_and_match(self):
        address = Address(2, 0, 13)
        assert address.prefix(2) == (2, 0)
        assert address.matches_prefix((2,))
        assert address.matches_prefix((2, 0))
        assert not address.matches_prefix((3,))

    def test_prefix_out_of_range(self):
        with pytest.raises(ValueError):
            Address(1).prefix(5)

    def test_empty_address_rejected(self):
        with pytest.raises(ValueError):
            Address()

    def test_negative_component_rejected(self):
        with pytest.raises(ValueError):
            Address(-1)

    def test_ordering_and_hash(self):
        assert Address(1) < Address(2)
        assert Address(1, 2) < Address(1, 3)
        assert len({Address(1), Address(1)}) == 1

    def test_iteration_and_len(self):
        assert list(Address(1, 2, 3)) == [1, 2, 3]
        assert len(Address(1, 2, 3)) == 3


class TestPortAndDifNames:
    def test_port_equality(self):
        assert PortId(3) == PortId(3)
        assert PortId(3) != PortId(4)

    def test_port_negative_rejected(self):
        with pytest.raises(ValueError):
            PortId(-1)

    def test_dif_name_equality(self):
        assert DifName("metro") == DifName("metro")

    def test_ipcp_name_convention(self):
        name = DifName("metro").ipcp_name("host-a")
        assert name == ApplicationName("metro.ipcp.host-a")

    def test_empty_dif_name_rejected(self):
        with pytest.raises(ValueError):
            DifName("")


class TestQosCubes:
    def test_reliable_cube_forces_zero_loss_tolerance(self):
        cube = QosCube("r", reliable=True, loss_tolerance=0.5)
        assert cube.loss_tolerance == 0.0

    def test_compatibility_reliability(self):
        assert RELIABLE.compatible_with(RELIABLE)
        assert not RELIABLE.compatible_with(BEST_EFFORT)
        assert BEST_EFFORT.compatible_with(RELIABLE)

    def test_compatibility_delay_bound(self):
        tight = QosCube("t", max_delay=0.01)
        loose = QosCube("l", max_delay=0.5)
        assert loose.compatible_with(tight)
        assert not tight.compatible_with(loose)
        assert not tight.compatible_with(BEST_EFFORT)

    def test_resolve_exact_name_wins(self):
        assert resolve_cube(RELIABLE, DEFAULT_CUBES) is DEFAULT_CUBES["reliable"]

    def test_resolve_none_is_best_effort(self):
        assert resolve_cube(None, DEFAULT_CUBES).name == "best-effort"

    def test_resolve_compatible_fallback(self):
        request = QosCube("custom", reliable=True)
        resolved = resolve_cube(request, DEFAULT_CUBES)
        assert resolved.reliable

    def test_resolve_failure_raises(self):
        request = QosCube("impossible", max_delay=1e-9)
        with pytest.raises(LookupError):
            resolve_cube(request, {"best-effort": BEST_EFFORT})

    def test_priority_validation(self):
        with pytest.raises(ValueError):
            QosCube("bad", priority=-1)

    def test_loss_tolerance_validation(self):
        with pytest.raises(ValueError):
            QosCube("bad", loss_tolerance=2.0)

    def test_default_cubes_cover_the_range(self):
        assert {"best-effort", "reliable", "low-latency", "bulk"} <= set(DEFAULT_CUBES)
        assert DEFAULT_CUBES["low-latency"].priority < DEFAULT_CUBES["bulk"].priority


class TestPduFormats:
    def test_data_pdu_wire_size(self):
        pdu = DataPdu(Address(1), Address(2), 1, 2, 0, b"x" * 100, 100)
        assert pdu.wire_size() == DATA_HEADER_BYTES + 100

    def test_data_pdu_negative_payload_rejected(self):
        with pytest.raises(ValueError):
            DataPdu(Address(1), Address(2), 1, 2, 0, b"", -1)

    def test_control_pdu_wire_size_includes_sack(self):
        pdu = ControlPdu(Address(1), Address(2), ACK, 1, 2, ack_seq=5,
                         sack=(7, 9))
        assert pdu.wire_size() == CONTROL_HEADER_BYTES + 8

    def test_control_pdu_kind_validated(self):
        with pytest.raises(ValueError):
            ControlPdu(Address(1), Address(2), "bogus", 1, 2)

    def test_keepalive_is_a_valid_kind(self):
        pdu = ControlPdu(Address(1), Address(2), KEEPALIVE, 0, 0)
        assert pdu.kind == KEEPALIVE

    def test_management_pdu_size_tracks_message(self):
        small = ManagementPdu(None, None, RiepMessage("M_READ", obj="/x"))
        large = ManagementPdu(None, None, RiepMessage(
            "M_WRITE", obj="/x", value={"k": "v" * 500}))
        assert small.wire_size() >= MGMT_HEADER_BYTES
        assert large.wire_size() > small.wire_size() + 400

    def test_management_pdu_hop_scoped_has_no_destination(self):
        pdu = ManagementPdu(Address(1), None, RiepMessage("M_READ"))
        assert pdu.dst_addr is None
