"""Memory-footprint regression tests for the columnar engine core.

The 100k-system tier exists because per-member state became columnar
and slotted; these tests pin that win with ``tracemalloc`` so future
object-graph creep (an unslotted hot class re-growing ``__dict__``s, a
per-link PRNG materialized eagerly, a dict-tree RIB) fails CI instead
of silently shrinking the reachable plant size.

Budgets are peak *traced* bytes per member on a fixed plant —
deterministic modulo interpreter version, so they carry generous but
regression-sized headroom: the pre-refactor layout (eager ~2.5 KB
Mersenne state per link, instance dicts on links/nodes/ends) blows the
build budget by itself.
"""

import tracemalloc

from repro.core.efcp import EfcpConnection, EfcpPolicy, EfcpTable
from repro.core.names import Address
from repro.experiments.e6_scalability import build_flood_spec
from repro.shard import all_nodes_announce, attach_flood
from repro.sim.engine import Engine

#: The fixed plant: the medium E6 flood tier (10 regions x 20 hosts).
REGIONS, HOSTS = 10, 20
MEMBERS = 1 + REGIONS * (1 + HOSTS)

#: Peak traced bytes per member for the *built* plant (nodes, links,
#: ends, flood state — no traffic).  Measured ~5.1 KB/member; the old
#: layout's eager per-link PRNG alone added ~2.5 KB/member on top.
BUILD_BUDGET = 8_000

#: Peak traced bytes per member across the full every-node flood run
#: (dominated by the per-node first-delivery rows the experiments
#: read back).  Measured ~29.5 KB/member.
RUN_BUDGET = 45_000

#: Flyweight EFCP connections sharing one per-DIF table: peak traced
#: bytes per connection (measured ~2.1 KB — send queue, stats, view)
#: and columnar bytes per row (12 columns x 8 bytes, ~96 B amortized).
CONNECTION_BUDGET = 3_500
ROW_BUDGET = 128


def test_flood_plant_build_stays_in_budget():
    spec = build_flood_spec(REGIONS, HOSTS)
    workload = all_nodes_announce(spec.nodes)
    tracemalloc.start()
    try:
        network = spec.build(seed=1)
        attach_flood(network, workload)
        _current, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    assert len(spec.nodes) == MEMBERS
    per_member = peak / MEMBERS
    assert per_member < BUILD_BUDGET, (
        f"built plant costs {per_member:.0f} B/member "
        f"(budget {BUILD_BUDGET}); an engine-core class probably "
        f"regrew an instance dict or an eager per-link allocation")


def test_flood_run_stays_in_budget():
    spec = build_flood_spec(REGIONS, HOSTS)
    workload = all_nodes_announce(spec.nodes)
    tracemalloc.start()
    try:
        network = spec.build(seed=1)
        floods = attach_flood(network, workload)
        network.run()
        _current, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    # the workload actually ran: every member heard every other member
    deliveries = sum(len(f.deliveries) for f in floods.values())
    assert deliveries == MEMBERS * (MEMBERS - 1)
    per_member = peak / MEMBERS
    assert per_member < RUN_BUDGET, (
        f"flood run peaks at {per_member:.0f} B/member "
        f"(budget {RUN_BUDGET})")


def test_efcp_flyweights_share_one_columnar_table():
    engine = Engine()
    policy = EfcpPolicy()
    count = 1000
    tracemalloc.start()
    try:
        table = EfcpTable()
        connections = [
            EfcpConnection(engine, Address(1), Address(2), local_cep=i,
                           remote_cep=i + 10_000, policy=policy,
                           output=lambda pdu: None,
                           deliver=lambda payload, size: None,
                           table=table)
            for i in range(count)]
        _current, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    assert len(connections) == count
    assert all(c._table is table for c in connections)
    assert peak / count < CONNECTION_BUDGET
    assert table.nbytes() / count < ROW_BUDGET
