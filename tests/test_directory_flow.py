"""Unit tests for directories and the Flow object."""

import pytest

from repro.core.directory import (DIRECTORY_OBJ, DifDirectory,
                                  InterDifDirectory)
from repro.core.flow import (ALLOCATED, DEALLOCATED, FAILED, PENDING, Flow,
                             FlowError)
from repro.core.names import Address, ApplicationName, DifName, PortId
from repro.core.qos import BEST_EFFORT
from repro.core.riep import M_WRITE, RiepMessage


def make_directory(address, floods=None):
    floods = floods if floods is not None else []
    return DifDirectory(lambda: address,
                        lambda message, exclude: floods.append(message) or 1)


class TestDifDirectory:
    def test_local_registration_resolves_locally(self):
        directory = make_directory(Address(1))
        app = ApplicationName("svc")
        directory.register(app)
        assert directory.lookup(app) == Address(1)

    def test_registration_floods_advertisement(self):
        floods = []
        directory = make_directory(Address(1), floods)
        directory.register(ApplicationName("svc"))
        assert len(floods) == 1
        assert floods[0].obj == DIRECTORY_OBJ
        assert "svc" in floods[0].value["names"]

    def test_duplicate_registration_not_refloded(self):
        floods = []
        directory = make_directory(Address(1), floods)
        app = ApplicationName("svc")
        directory.register(app)
        directory.register(app)
        assert len(floods) == 1

    def test_unregister_advertises_removal(self):
        floods = []
        directory = make_directory(Address(1), floods)
        app = ApplicationName("svc")
        directory.register(app)
        directory.unregister(app)
        assert directory.lookup(app) is None
        assert floods[-1].value["names"] == []

    def test_remote_update_learned_and_reflooded(self):
        directory = make_directory(Address(1))
        update = RiepMessage(M_WRITE, obj=DIRECTORY_OBJ, value={
            "origin": (2,), "seq": 1, "names": ["remote-svc"]})
        directory.handle_update(update, Address(2))
        assert directory.lookup(ApplicationName("remote-svc")) == Address(2)
        assert directory.updates_reflooded == 1

    def test_deprecated_refloded_alias_removed(self):
        # the misspelled alias is gone, same treatment as lsas_refloded
        # in core/routing.py
        directory = make_directory(Address(1))
        update = RiepMessage(M_WRITE, obj=DIRECTORY_OBJ, value={
            "origin": (2,), "seq": 1, "names": ["remote-svc"]})
        directory.handle_update(update, Address(2))
        assert not hasattr(directory, "updates_refloded")
        assert directory.updates_reflooded == 1

    def test_stale_update_ignored(self):
        directory = make_directory(Address(1))
        fresh = RiepMessage(M_WRITE, obj=DIRECTORY_OBJ, value={
            "origin": (2,), "seq": 5, "names": ["v5"]})
        stale = RiepMessage(M_WRITE, obj=DIRECTORY_OBJ, value={
            "origin": (2,), "seq": 3, "names": ["v3"]})
        directory.handle_update(fresh, Address(2))
        directory.handle_update(stale, Address(2))
        assert directory.lookup(ApplicationName("v5")) == Address(2)
        assert directory.lookup(ApplicationName("v3")) is None

    def test_own_echo_ignored(self):
        directory = make_directory(Address(1))
        echo = RiepMessage(M_WRITE, obj=DIRECTORY_OBJ, value={
            "origin": (1,), "seq": 99, "names": ["me"]})
        directory.handle_update(echo, Address(2))
        assert directory.lookup(ApplicationName("me")) is None

    def test_snapshot_roundtrip(self):
        source = make_directory(Address(1))
        source.register(ApplicationName("a"))
        source.handle_update(RiepMessage(M_WRITE, obj=DIRECTORY_OBJ, value={
            "origin": (2,), "seq": 1, "names": ["b"]}), Address(2))
        target = make_directory(Address(3))
        target.load_snapshot(source.sync_snapshot())
        assert target.lookup(ApplicationName("a")) == Address(1)
        assert target.lookup(ApplicationName("b")) == Address(2)

    def test_forget_origin(self):
        directory = make_directory(Address(1))
        directory.handle_update(RiepMessage(M_WRITE, obj=DIRECTORY_OBJ, value={
            "origin": (2,), "seq": 1, "names": ["gone"]}), Address(2))
        directory.forget_origin(Address(2))
        assert directory.lookup(ApplicationName("gone")) is None

    def test_known_names_union(self):
        directory = make_directory(Address(1))
        directory.register(ApplicationName("mine"))
        directory.handle_update(RiepMessage(M_WRITE, obj=DIRECTORY_OBJ, value={
            "origin": (2,), "seq": 1, "names": ["theirs"]}), Address(2))
        assert directory.known_names() == {ApplicationName("mine"),
                                           ApplicationName("theirs")}

    def test_unenrolled_member_defers_advertisement(self):
        floods = []
        directory = DifDirectory(lambda: None,
                                 lambda m, e: floods.append(m) or 1)
        directory.register(ApplicationName("early"))
        assert floods == []


class TestInterDifDirectory:
    def test_register_and_candidates(self):
        idd = InterDifDirectory()
        app = ApplicationName("svc")
        idd.register(app, DifName("blue"))
        idd.register(app, DifName("red"))
        assert [str(d) for d in idd.candidates(app)] == ["blue", "red"]

    def test_unregister_clears_empty_entries(self):
        idd = InterDifDirectory()
        app = ApplicationName("svc")
        idd.register(app, DifName("blue"))
        idd.unregister(app, DifName("blue"))
        assert idd.candidates(app) == []
        assert idd.size() == 0

    def test_unknown_app_has_no_candidates(self):
        assert InterDifDirectory().candidates(ApplicationName("x")) == []


class TestFlow:
    def _flow(self):
        return Flow(PortId(1), ApplicationName("me"), ApplicationName("you"),
                    BEST_EFFORT, DifName("d"))

    def test_lifecycle_pending_to_allocated(self):
        flow = self._flow()
        assert flow.state == PENDING
        events = []
        flow.on_allocated = lambda f: events.append("allocated")
        flow.provider_bind(lambda p, s: True)
        flow.provider_allocated()
        assert flow.state == ALLOCATED and events == ["allocated"]

    def test_allocated_requires_bind(self):
        flow = self._flow()
        with pytest.raises(FlowError):
            flow.provider_allocated()

    def test_send_before_allocation_raises(self):
        with pytest.raises(FlowError):
            self._flow().send("x", 1)

    def test_send_counts_traffic(self):
        flow = self._flow()
        flow.provider_bind(lambda p, s: True)
        flow.provider_allocated()
        flow.send("x", 10)
        assert flow.sdus_sent == 1 and flow.bytes_sent == 10

    def test_send_backpressure_not_counted(self):
        flow = self._flow()
        flow.provider_bind(lambda p, s: False)
        flow.provider_allocated()
        assert not flow.send("x", 10)
        assert flow.sdus_sent == 0

    def test_failure_path(self):
        flow = self._flow()
        events = []
        flow.on_failed = lambda f, reason: events.append(reason)
        flow.provider_failed("nope")
        assert flow.state == FAILED
        assert flow.failure_reason == "nope"
        assert events == ["nope"]

    def test_deliver_counts_and_calls_receiver(self):
        flow = self._flow()
        received = []
        flow.set_receiver(lambda p, s: received.append((p, s)))
        flow.provider_deliver("data", 4)
        assert received == [("data", 4)]
        assert flow.sdus_received == 1

    def test_deallocate_invokes_provider_and_callback(self):
        flow = self._flow()
        released = []
        flow.provider_bind(lambda p, s: True, dealloc_fn=lambda: released.append(1))
        flow.provider_allocated()
        events = []
        flow.on_deallocated = lambda f: events.append(1)
        flow.deallocate()
        assert flow.state == DEALLOCATED and released and events

    def test_deallocate_idempotent(self):
        flow = self._flow()
        calls = []
        flow.provider_bind(lambda p, s: True, dealloc_fn=lambda: calls.append(1))
        flow.provider_allocated()
        flow.deallocate()
        flow.deallocate()
        assert len(calls) == 1

    def test_provider_released_notifies_user(self):
        flow = self._flow()
        flow.provider_bind(lambda p, s: True)
        flow.provider_allocated()
        events = []
        flow.on_deallocated = lambda f: events.append(1)
        flow.provider_released()
        assert flow.state == DEALLOCATED and events

    def test_failed_flow_ignores_later_transitions(self):
        flow = self._flow()
        flow.provider_failed("x")
        flow.provider_released()
        assert flow.state == FAILED
