"""Unit/integration tests for the IP baseline network layer."""

import pytest
from hypothesis import given, strategies as st

from repro.baselines.ipnet import (IpPacket, IpRoutingDaemon, IpStack, ip,
                                   ip_str, prefix_of)
from repro.baselines.sockets import IpFabric
from repro.sim.network import Network


class TestAddressing:
    def test_parse_and_render(self):
        assert ip("10.0.0.1") == 0x0A000001
        assert ip_str(0x0A000001) == "10.0.0.1"

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_property_roundtrip(self, value):
        assert ip(ip_str(value)) == value

    def test_bad_literals_rejected(self):
        for bad in ("10.0.0", "256.1.1.1", "a.b.c.d"):
            with pytest.raises(ValueError):
                ip(bad)

    def test_prefix_of(self):
        assert prefix_of(ip("10.1.2.3"), 8) == ip("10.0.0.0")
        assert prefix_of(ip("10.1.2.3"), 32) == ip("10.1.2.3")
        assert prefix_of(ip("10.1.2.3"), 0) == 0


class TestForwarding:
    def _stack_pair(self):
        network = Network(seed=1)
        network.add_node("a")
        network.add_node("b")
        network.connect("a", "b")
        a = IpStack(network.node("a"))
        b = IpStack(network.node("b"))
        a.add_interface("if0", ip("10.0.0.1"), 30)
        b.add_interface("if0", ip("10.0.0.2"), 30)
        a.add_route(ip("10.0.0.0"), 30, None, "if0")
        b.add_route(ip("10.0.0.0"), 30, None, "if0")
        return network, a, b

    def test_local_delivery_to_protocol(self):
        network, a, b = self._stack_pair()
        got = []
        b.register_protocol(200, lambda packet, stack: got.append(packet))
        a.send(IpPacket(ip("10.0.0.1"), ip("10.0.0.2"), 200, "hi", 10))
        network.run(until=1.0)
        assert len(got) == 1 and got[0].payload == "hi"

    def test_no_route_drops(self):
        network, a, _b = self._stack_pair()
        ok = a.send(IpPacket(ip("10.0.0.1"), ip("99.0.0.1"), 200, "x", 1))
        assert not ok
        assert a.packets_dropped == 1

    def test_unknown_protocol_dropped(self):
        network, a, b = self._stack_pair()
        a.send(IpPacket(ip("10.0.0.1"), ip("10.0.0.2"), 250, "x", 1))
        network.run(until=1.0)
        assert b.packets_dropped == 1

    def test_longest_prefix_match_wins(self):
        network, a, _b = self._stack_pair()
        a.add_route(ip("10.0.0.2"), 32, None, "if0")
        route = a._lookup(ip("10.0.0.2"))
        assert route.plen == 32

    def test_host_does_not_forward(self):
        network = Network(seed=1)
        for name in ("a", "b", "c"):
            network.add_node(name)
        network.connect("a", "b")
        network.connect("b", "c")
        fabric = IpFabric(network, routers=[])   # b is NOT a router
        a, b, c = (fabric.host(n) for n in ("a", "b", "c"))
        got = []
        c.ip.register_protocol(200, lambda packet, stack: got.append(packet))
        a.ip.send(IpPacket(a.addr(), c.addr(), 200, "x", 1))
        network.run(until=1.0)
        assert got == []
        assert b.ip.packets_dropped >= 1

    def test_ttl_expiry(self):
        network = Network(seed=1)
        for name in ("a", "b", "c"):
            network.add_node(name)
        network.connect("a", "b")
        network.connect("b", "c")
        fabric = IpFabric(network, routers=["b"])
        a, b, c = (fabric.host(n) for n in ("a", "b", "c"))
        got = []
        c.ip.register_protocol(200, lambda packet, stack: got.append(packet))
        a.ip.send(IpPacket(a.addr(), c.addr(), 200, "x", 1, ttl=1))
        network.run(until=1.0)
        assert got == []


class TestRoutingDaemon:
    def test_multihop_connectivity(self):
        network = Network(seed=1)
        names = network.build_chain(4)
        fabric = IpFabric(network, routers=names[1:-1])
        first, last = fabric.host(names[0]), fabric.host(names[-1])
        got = []
        last.ip.register_protocol(200, lambda packet, stack: got.append(packet))
        first.ip.send(IpPacket(first.addr(), last.addr(), 200, "far", 4))
        network.run(until=1.0)
        assert len(got) == 1

    def test_interface_goes_down_with_link(self):
        network = Network(seed=1)
        network.add_node("a")
        network.add_node("b")
        link = network.connect("a", "b")
        fabric = IpFabric(network)
        a = fabric.host("a")
        assert a.ip.interfaces["if0"].up
        link.fail()
        assert not a.ip.interfaces["if0"].up
        link.repair()
        assert a.ip.interfaces["if0"].up

    def test_reconvergence_after_failure(self):
        network = Network(seed=1)
        for name in ("a", "b", "c", "d"):
            network.add_node(name)
        network.connect("a", "b")
        network.connect("b", "d")
        network.connect("a", "c")
        network.connect("c", "d")
        fabric = IpFabric(network, routers=["b", "c"])
        a, d = fabric.host("a"), fabric.host("d")
        got = []
        d.ip.register_protocol(200, lambda packet, stack: got.append(packet))
        a.ip.send(IpPacket(a.addr("if0"), d.addr("if0"), 200, "one", 4))
        network.run(until=1.0)
        count_before = len(got)
        network.link_between("a", "b").fail()
        fabric.reconverge()
        network.run(until=2.0)
        # after reconvergence the other path carries traffic (note: the
        # destination address on the dead subnet is gone; send to d's
        # other interface)
        a.ip.send(IpPacket(a.addr("if1"), d.addr("if1"), 200, "two", 4))
        network.run(until=3.0)
        assert len(got) == count_before + 1

    def test_subnet_routes_not_host_routes(self):
        network = Network(seed=1)
        names = network.build_chain(3)
        fabric = IpFabric(network, routers=[names[1]])
        first = fabric.host(names[0])
        # one default-ish entry per remote subnet + connected: small table
        assert first.ip.table_size() <= 3

    def test_paths_avoid_non_forwarding_hosts(self):
        # diamond where one branch transits a host: traffic must take the
        # router branch even if longer
        network = Network(seed=1)
        for name in ("src", "host", "r1", "r2", "dst"):
            network.add_node(name)
        network.connect("src", "host")
        network.connect("host", "dst")      # short path via host
        network.connect("src", "r1")
        network.connect("r1", "r2")
        network.connect("r2", "dst")        # longer path via routers
        fabric = IpFabric(network, routers=["r1", "r2"])
        src, dst = fabric.host("src"), fabric.host("dst")
        got = []
        dst.ip.register_protocol(200, lambda packet, stack: got.append(packet))
        target = dst.addr("if1")  # dst's address on the r2--dst subnet
        src.ip.send(IpPacket(src.addr("if1"), target, 200, "x", 1))
        network.run(until=1.0)
        assert len(got) == 1
        assert fabric.host("host").ip.packets_forwarded == 0
