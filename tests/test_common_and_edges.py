"""Coverage for experiment utilities and assorted behaviour edges."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.experiments.common import (delivery_gap, format_table, goodput_bps,
                                      mean, percentile)


class TestFormatTable:
    def test_renders_aligned_columns(self):
        text = format_table([{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert "22" in lines[3]

    def test_title_and_empty(self):
        assert format_table([], title="T").startswith("T")

    def test_missing_cells_dashed(self):
        text = format_table([{"a": 1}, {"a": 2, "b": 3}],
                            columns=["a", "b"])
        assert "-" in text.splitlines()[2]

    def test_value_formats(self):
        text = format_table([{"big": 123456.0, "small": 0.00123,
                              "bool": True, "nan": float("nan"),
                              "zero": 0.0}])
        row = text.splitlines()[2]
        assert "123,456" in row
        assert "yes" in row
        assert "nan" in row

    def test_explicit_column_selection(self):
        text = format_table([{"a": 1, "b": 2}], columns=["b"])
        assert "a" not in text.splitlines()[0]

    def test_heterogeneous_row_keys_follow_first_row(self):
        # merged sweep rows need not share a schema (E6 ip+rip rows carry
        # updates_per_s, DIF rows don't): the first row picks the columns,
        # later-only keys are dropped, holes render as dashes
        rows = [{"config": "flat", "mean_table": 55.0},
                {"config": "ip+rip", "mean_table": 7.4, "updates_per_s": 12.0},
                {"config": "recursive"}]
        text = format_table(rows)
        header, _rule, first, second, third = text.splitlines()
        assert "updates_per_s" not in header
        assert "12" not in second
        assert third.split()[-1] == "-"

    def test_heterogeneous_rows_with_explicit_column_union(self):
        rows = [{"a": 1}, {"b": 2}]
        text = format_table(rows, columns=["a", "b"])
        _header, _rule, first, second = text.splitlines()
        assert first.split() == ["1", "-"]
        assert second.split() == ["-", "2"]


class TestMetricsHelpers:
    def test_goodput(self):
        assert goodput_bps(1000, 2.0) == 4000.0
        assert math.isnan(goodput_bps(1000, 0.0))

    def test_mean(self):
        assert mean([1.0, 3.0]) == 2.0
        assert math.isnan(mean([]))

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                              allow_nan=False), min_size=1, max_size=50))
    def test_property_percentile_bounds(self, values):
        assert min(values) <= percentile(values, 50) <= max(values)

    def test_percentile_empty_nan(self):
        assert math.isnan(percentile([], 50))

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                              allow_nan=False), min_size=1, max_size=50))
    def test_property_percentile_extremes_are_min_and_max(self, values):
        # nearest-rank at the endpoints: pct=0 clamps to the first
        # order statistic, pct=100 is exactly the last
        assert percentile(values, 0) == min(values)
        assert percentile(values, 100) == max(values)

    @given(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
           st.floats(min_value=0, max_value=100))
    def test_property_single_element_percentile_is_that_element(self, value,
                                                                pct):
        assert percentile([value], pct) == value


class TestDeliveryGap:
    def test_simple_outage(self):
        times = [0.1, 0.2, 0.3, 1.5, 1.6]
        assert delivery_gap(times, 0.35) == pytest.approx(1.2)

    def test_no_deliveries_after_is_infinite(self):
        assert math.isinf(delivery_gap([0.1, 0.2], 0.5))

    def test_empty_deliveries_is_infinite(self):
        # a workload that never delivered anything is an unbounded
        # outage, not a crash (and not zero)
        assert math.isinf(delivery_gap([], 0.0))
        assert math.isinf(delivery_gap([], 123.4))

    def test_in_flight_delivery_does_not_mask_outage(self):
        # one delivery right after the failure, then a long silence
        times = [0.1, 0.2, 0.21, 1.9, 2.0]
        assert delivery_gap(times, 0.2) == pytest.approx(1.69)

    def test_steady_traffic_small_gap(self):
        times = [i * 0.05 for i in range(100)]
        assert delivery_gap(times, 2.0) == pytest.approx(0.05)

    def test_at_before_first_delivery_measures_from_at(self):
        # regression: when ``at`` precedes the first delivery, the wait
        # from ``at`` until delivery starts is itself an outage and sets
        # a floor on the result
        assert delivery_gap([3.0, 3.05, 3.1], 1.0) == pytest.approx(2.0)
        # ...without discarding larger gaps later in the run
        assert delivery_gap([3.0, 3.05, 9.0], 2.5) == pytest.approx(5.95)
        assert delivery_gap([3.0, 3.05, 4.0], 2.5) == pytest.approx(0.95)

    def test_at_before_first_delivery_unsorted_input(self):
        assert delivery_gap([3.1, 3.0, 3.05], 1.0) == pytest.approx(2.0)

    def test_delivery_exactly_at_at_anchors_at_at(self):
        assert delivery_gap([2.0, 2.05], 2.0) == pytest.approx(0.05)


class TestEfcpDelayedAcks:
    def test_ack_delay_batches_acks(self):
        from repro.core.efcp import EfcpConnection, EfcpPolicy
        from repro.core.names import Address
        from repro.core.pdu import ControlPdu, DataPdu
        from repro.sim.engine import Engine
        engine = Engine()
        acks = []

        def output(pdu):
            if isinstance(pdu, ControlPdu):
                acks.append(engine.now)
        policy = EfcpPolicy(ack_delay=0.05)
        conn = EfcpConnection(engine, Address(2), Address(1), 2, 1, policy,
                              output=output, deliver=lambda p, s: None)
        for seq in range(5):
            conn.handle_data(DataPdu(Address(1), Address(2), 1, 2, seq,
                                     b"x", 1))
        engine.run(until=1.0)
        assert len(acks) == 1            # five arrivals, one delayed ack
        assert acks[0] == pytest.approx(0.05)

    def test_immediate_acks_by_default(self):
        from repro.core.efcp import EfcpConnection, EfcpPolicy
        from repro.core.names import Address
        from repro.core.pdu import ControlPdu, DataPdu
        from repro.sim.engine import Engine
        engine = Engine()
        acks = []

        def output(pdu):
            if isinstance(pdu, ControlPdu):
                acks.append(pdu)
        conn = EfcpConnection(engine, Address(2), Address(1), 2, 1,
                              EfcpPolicy(), output=output,
                              deliver=lambda p, s: None)
        for seq in range(3):
            conn.handle_data(DataPdu(Address(1), Address(2), 1, 2, seq,
                                     b"x", 1))
        assert len(acks) == 3


class TestAppEdges:
    def _pair(self):
        from repro.core import (Dif, DifPolicies, Orchestrator, add_shims,
                                build_dif_over, make_systems, shim_between)
        from repro.sim.network import Network
        network = Network(seed=9)
        network.add_node("a")
        network.add_node("b")
        network.connect("a", "b")
        systems = make_systems(network)
        add_shims(systems, network)
        dif = Dif("net", DifPolicies(keepalive_interval=5.0))
        orchestrator = Orchestrator(network)
        build_dif_over(orchestrator, dif, systems,
                       adjacencies=[("a", "b",
                                     shim_between(network, "a", "b"))])
        orchestrator.run(timeout=30)
        return network, systems

    def test_echo_server_counts_active_flows(self):
        from repro.apps import EchoClient, EchoServer
        from repro.core import run_until
        network, systems = self._pair()
        server = EchoServer(systems["b"])
        network.run(until=network.engine.now + 0.5)
        clients = [EchoClient(systems["a"], client_name=f"c{i}")
                   for i in range(3)]
        run_until(network, lambda: all(c.ready for c in clients), timeout=15)
        assert server.active_flows() == 3
        clients[0].flow.deallocate()
        network.run(until=network.engine.now + 1.0)
        assert server.active_flows() == 2

    def test_file_sender_honours_chunk_size(self):
        from repro.apps import FileSender, FileSink
        from repro.core import run_until
        network, systems = self._pair()
        sink = FileSink(systems["b"])
        network.run(until=network.engine.now + 0.5)
        sender = FileSender(systems["a"], total_bytes=10_000, chunk_size=3000)
        run_until(network, lambda: sink.transfers_completed >= 1, timeout=60)
        assert sink.bytes_received == 10_000

    def test_streaming_sink_tracks_sources_separately(self):
        from repro.apps.streaming import CbrSource, LatencySink
        from repro.core import run_until
        from repro.core.qos import BEST_EFFORT
        network, systems = self._pair()
        sink = LatencySink(systems["b"], "sink")
        network.run(until=network.engine.now + 0.5)
        one = CbrSource(systems["a"], "src-one", "sink", BEST_EFFORT, 200, 0.05)
        two = CbrSource(systems["a"], "src-two", "sink", BEST_EFFORT, 200, 0.05)
        run_until(network, lambda: one.waiter.done() and two.waiter.done(),
                  timeout=15)
        one.start()
        two.start()
        network.run(until=network.engine.now + 1.0)
        one.stop()
        two.stop()
        network.run(until=network.engine.now + 0.5)
        assert len(sink.delays_for("src-one")) > 5
        assert len(sink.delays_for("src-two")) > 5
        assert all(d >= 0 for d in sink.delays_for("src-one"))


class TestRibLiteralReads:
    def test_remote_read_of_literal_rib_object(self):
        from repro.core import run_until
        network, systems = TestAppEdges()._pair()
        b_ipcp = systems["b"].ipcp("net")
        b_ipcp.rib.write("/custom/note", {"owner": "ops"})
        a_ipcp = systems["a"].ipcp("net")
        replies = []
        a_ipcp.remote_read(b_ipcp.address, "/custom/note", replies.append)
        run_until(network, lambda: replies, timeout=10)
        assert replies[0].ok
        assert replies[0].value == {"owner": "ops"}
