"""End-to-end: a DIF configured entirely from a declarative JSON spec (§8).

The whole point of "only policies to specify": a facility's behaviour —
auth, scheduling, EFCP tuning, admission, custom cubes — is data.  These
tests build live networks from JSON documents and verify each declared
behaviour actually governs the running system.
"""

import json

import pytest

from repro.core import (ApplicationName, Dif, FlowWaiter, MessageFlow,
                        Orchestrator, QosCube, add_shims, build_dif_over,
                        make_systems, policies_from_spec, run_until,
                        shim_between)
from repro.sim.network import Network

SPEC = {
    "auth": {"type": "psk", "secret": "spec-secret"},
    "scheduler": {"type": "priority"},
    "keepalive": {"interval": 0.25, "dead_factor": 3},
    "efcp": {"rto_min": 0.01},
    "qos_cubes": [
        {"name": "spec-voice", "max_delay": 0.05, "priority": 0,
         "loss_tolerance": 0.05, "avg_bandwidth": 2e6},
    ],
    "admission": {"type": "guaranteed-bandwidth", "capacity_bps": 4e6},
}


def build_from_spec(spec, joiner_spec=None, seed=1):
    network = Network(seed=seed)
    network.add_node("a")
    network.add_node("b")
    network.connect("a", "b")
    systems = make_systems(network)
    add_shims(systems, network)
    dif = Dif("specnet", policies_from_spec(spec))
    ipcp_a = systems["a"].create_ipcp(dif)
    ipcp_a.bootstrap()
    systems["a"].publish_ipcp("specnet", shim_between(network, "a", "b"))
    joiner_policies = policies_from_spec(
        joiner_spec if joiner_spec is not None else spec)
    joiner_dif = Dif("specnet", joiner_policies)
    # NB: separate Dif object simulates an independently configured system;
    # enrollment is what reconciles them (or rejects the mismatch)
    systems["b"].create_ipcp(joiner_dif)
    outcomes = []
    systems["b"].enroll("specnet", ipcp_a.name,
                        shim_between(network, "a", "b"),
                        done=lambda ok, reason: outcomes.append((ok, reason)))
    run_until(network, lambda: outcomes, timeout=30)
    return network, systems, dif, outcomes[0]


class TestSpecDrivenFacility:
    def test_spec_round_trips_through_json(self):
        policies_from_spec(json.loads(json.dumps(SPEC)))

    def test_matching_secrets_enroll(self):
        _n, systems, dif, (ok, _reason) = build_from_spec(SPEC)
        assert ok
        assert dif.enrollments_accepted == 1
        assert systems["b"].ipcp("specnet").enrolled

    def test_mismatched_secret_rejected(self):
        wrong = dict(SPEC)
        wrong["auth"] = {"type": "psk", "secret": "guess"}
        _n, _s, dif, (ok, reason) = build_from_spec(SPEC, joiner_spec=wrong)
        assert not ok and reason == "auth-denied"

    def test_declared_cube_is_allocatable(self):
        network, systems, _dif, (ok, _r) = build_from_spec(SPEC)
        assert ok
        systems["b"].register_app(ApplicationName("svc"), lambda f: None)
        network.run(until=network.engine.now + 0.5)
        voice = QosCube("spec-voice", max_delay=0.05, priority=0,
                        avg_bandwidth=2e6, loss_tolerance=0.05)
        flow = systems["a"].allocate_flow(ApplicationName("cli"),
                                          ApplicationName("svc"), qos=voice,
                                          dif_name="specnet")
        waiter = FlowWaiter(flow)
        run_until(network, waiter.done, timeout=10)
        assert waiter.ok
        assert flow.qos.name == "spec-voice"

    def test_declared_admission_budget_enforced(self):
        network, systems, _dif, (ok, _r) = build_from_spec(SPEC)
        assert ok
        systems["b"].register_app(ApplicationName("svc"), lambda f: None)
        network.run(until=network.engine.now + 0.5)
        voice = QosCube("spec-voice", max_delay=0.05, priority=0,
                        avg_bandwidth=2e6, loss_tolerance=0.05)
        waiters = []
        for index in range(3):   # 6 Mb/s demanded of a 4 Mb/s budget
            flow = systems["a"].allocate_flow(
                ApplicationName(f"cli-{index}"), ApplicationName("svc"),
                qos=voice, dif_name="specnet")
            waiters.append(FlowWaiter(flow))
        run_until(network, lambda: all(w.done() for w in waiters), timeout=20)
        assert sorted(w.ok for w in waiters) == [False, True, True]

    def test_declared_keepalive_governs_failover_speed(self):
        # two parallel links, spec keepalive 0.25*3 = 0.75s budget
        network = Network(seed=2)
        network.add_node("a")
        network.add_node("b")
        network.connect("a", "b", name="t#0")
        network.connect("a", "b", name="t#1")
        systems = make_systems(network)
        add_shims(systems, network)
        dif = Dif("specnet", policies_from_spec(SPEC))
        orchestrator = Orchestrator(network)
        from repro.core import shim_name_for
        build_dif_over(orchestrator, dif, systems, adjacencies=[
            ("a", "b", shim_name_for("t#0")),
            ("a", "b", shim_name_for("t#1"))])
        orchestrator.run(timeout=30)
        received = []

        def on_flow(flow):
            mf = MessageFlow(network.engine, flow)
            mf.set_message_receiver(lambda d: received.append(network.engine.now))
            on_flow._keep = mf
        systems["b"].register_app(ApplicationName("sink"), on_flow)
        network.run(until=network.engine.now + 0.5)
        from repro.core.qos import RELIABLE
        flow = systems["a"].allocate_flow(ApplicationName("src"),
                                          ApplicationName("sink"),
                                          qos=RELIABLE)
        waiter = FlowWaiter(flow)
        run_until(network, waiter.done, timeout=10)
        sender = MessageFlow(network.engine, flow)
        sent = [0]

        def pump():
            if sent[0] < 60:
                sender.send_message(b"x")
                sent[0] += 1
                network.engine.call_later(0.05, pump)
        pump()
        fail_at = network.engine.now + 1.0
        network.engine.call_later(1.0, network.links["t#0"].fail)
        run_until(network, lambda: len(received) >= 60, timeout=60)
        from repro.experiments.common import delivery_gap
        gap = delivery_gap(received, fail_at)
        assert gap < 0.25 * 3 + 0.6   # budget + recovery slack
