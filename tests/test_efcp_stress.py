"""EFCP stress and property tests: bidirectional traffic, random loss,
reordering, and AIMD fairness on a shared bottleneck."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.efcp import CONGESTION_AIMD, EfcpConnection, EfcpPolicy
from repro.core.names import Address
from repro.core.pdu import ControlPdu, DataPdu
from repro.sim.engine import Engine
from repro.sim.link import (CorruptedFrame, CorruptionModel, Link,
                            LinkConditions, ReorderModel)


class LossyWire:
    """Random-loss bidirectional pipe with optional reordering jitter."""

    def __init__(self, engine, loss=0.0, delay=0.005, jitter=0.0, seed=0):
        self.engine = engine
        self.loss = loss
        self.delay = delay
        self.jitter = jitter
        self.rng = random.Random(seed)
        self.a = None
        self.b = None

    def output_from(self, side):
        def output(pdu):
            if self.rng.random() < self.loss:
                return
            peer = self.b if side == "a" else self.a
            delay = self.delay + self.rng.random() * self.jitter
            self.engine.call_later(delay, self._deliver, peer, pdu)
        return output

    @staticmethod
    def _deliver(conn, pdu):
        if conn.closed:
            return
        if isinstance(pdu, DataPdu):
            conn.handle_data(pdu)
        else:
            conn.handle_control(pdu)


def lossy_pair(loss=0.0, jitter=0.0, seed=0, policy=None):
    engine = Engine()
    wire = LossyWire(engine, loss=loss, jitter=jitter, seed=seed)
    policy = policy or EfcpPolicy(rto_initial=0.1, rto_min=0.02, rto_max=1.0)
    got_a, got_b = [], []
    a = EfcpConnection(engine, Address(1), Address(2), 1, 2, policy,
                       output=wire.output_from("a"),
                       deliver=lambda p, s: got_a.append(p))
    b = EfcpConnection(engine, Address(2), Address(1), 2, 1, policy,
                       output=wire.output_from("b"),
                       deliver=lambda p, s: got_b.append(p))
    wire.a, wire.b = a, b
    return engine, a, b, got_a, got_b


class TestBidirectionalStress:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000),
           st.floats(min_value=0.0, max_value=0.3))
    def test_property_bidirectional_random_loss(self, seed, loss):
        engine, a, b, got_a, got_b = lossy_pair(loss=loss, seed=seed)
        for index in range(40):
            a.send(("a", index), 50)
            b.send(("b", index), 50)
        engine.run(until=120.0)
        assert got_b == [("a", index) for index in range(40)]
        assert got_a == [("b", index) for index in range(40)]
        assert a.all_acknowledged() and b.all_acknowledged()

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_property_reordering_jitter_preserves_order(self, seed):
        engine, a, _b, _ga, got_b = lossy_pair(jitter=0.02, seed=seed)
        for index in range(60):
            a.send(index, 20)
        engine.run(until=60.0)
        assert got_b == list(range(60))

    def test_interleaved_send_receive_over_long_run(self):
        engine, a, b, got_a, got_b = lossy_pair(loss=0.1, seed=7)
        counter = [0]

        def chatter():
            if counter[0] < 150:
                a.send(("ping", counter[0]), 30)
                b.send(("pong", counter[0]), 30)
                counter[0] += 1
                engine.call_later(0.03, chatter)
        chatter()
        engine.run(until=120.0)
        assert len(got_b) == 150 and len(got_a) == 150

    def test_total_blackout_then_heal(self):
        engine, a, _b, _ga, got_b = lossy_pair(loss=0.0, seed=1)
        wire = a._output.__closure__  # not used; we rely on policy behaviour
        # emulate blackout by 100% loss for a window
        engine2 = Engine()
        wire2 = LossyWire(engine2, loss=1.0, seed=3)
        policy = EfcpPolicy(rto_initial=0.05, rto_max=0.5, max_retries=100)
        got = []
        a2 = EfcpConnection(engine2, Address(1), Address(2), 1, 2, policy,
                            output=wire2.output_from("a"),
                            deliver=lambda p, s: None)
        b2 = EfcpConnection(engine2, Address(2), Address(1), 2, 1, policy,
                            output=wire2.output_from("b"),
                            deliver=lambda p, s: got.append(p))
        wire2.a, wire2.b = a2, b2
        for index in range(10):
            a2.send(index, 20)
        engine2.run(until=3.0)
        assert got == []
        wire2.loss = 0.0           # the medium heals
        engine2.run(until=30.0)
        assert got == list(range(10))


class TestSendQueueOrderUnderMixedOps:
    """Regression for the deque refactor of ``_send_queue``: SDUs
    submitted while earlier ones drain (mixed enqueue/dequeue at the
    window edge) must still arrive in submission order."""

    def test_trickled_submissions_interleave_with_drain(self):
        engine, a, _b, _ga, got_b = lossy_pair(
            policy=EfcpPolicy(initial_credit=4, rto_initial=0.1))
        counter = [0]

        def trickle():
            # submit in small bursts so the queue repeatedly straddles
            # the 4-PDU window: some SDUs transmit instantly, some queue
            if counter[0] < 90:
                for _ in range(3):
                    a.send(counter[0], 20)
                    counter[0] += 1
                engine.call_later(0.004, trickle)
        trickle()
        engine.run(until=30.0)
        assert got_b == list(range(90))
        assert a.all_acknowledged()

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000),
           st.integers(min_value=1, max_value=6))
    def test_property_order_survives_any_window(self, seed, credit):
        engine, a, _b, _ga, got_b = lossy_pair(
            seed=seed, policy=EfcpPolicy(initial_credit=credit,
                                         rto_initial=0.1))
        for index in range(40):
            a.send(index, 20)
        engine.run(until=60.0)
        assert got_b == list(range(40))


class TestReceiverWindowEnforcement:
    """The receiver must not buffer sequence numbers beyond the credit it
    granted — an out-of-window PDU is dropped and counted, never stored
    (the unbounded ``_rcv_buffer`` bug)."""

    def _receiver(self, window=8):
        engine = Engine()
        got = []
        policy = EfcpPolicy(initial_credit=window)
        conn = EfcpConnection(engine, Address(2), Address(1), 2, 1, policy,
                              output=lambda pdu: None,
                              deliver=lambda p, s: got.append(p))
        return engine, conn, got

    def _data(self, seq):
        return DataPdu(Address(1), Address(2), 1, 2, seq, ("x", seq), 20)

    def test_out_of_window_pdu_dropped_and_counted(self):
        _engine, conn, got = self._receiver(window=8)
        conn.handle_data(self._data(8))     # seq 8 >= 0 + 8: outside
        assert conn.stats.window_drops == 1
        assert len(conn._rcv_buffer) == 0
        assert got == []
        conn.handle_data(self._data(7))     # last in-window seq: buffered
        assert conn.stats.window_drops == 1
        assert len(conn._rcv_buffer) == 1

    def test_window_slides_with_delivery(self):
        _engine, conn, got = self._receiver(window=4)
        for seq in range(4):
            conn.handle_data(self._data(seq))
        assert [p[1] for p in got] == [0, 1, 2, 3]
        # window slid to [4, 8): seq 7 fits now, seq 8 still does not
        conn.handle_data(self._data(7))
        assert conn.stats.window_drops == 0
        conn.handle_data(self._data(8))
        assert conn.stats.window_drops == 1

    def test_flood_of_wild_seqs_cannot_grow_the_buffer(self):
        _engine, conn, _got = self._receiver(window=8)
        for seq in range(100, 200):
            conn.handle_data(self._data(seq))
        assert len(conn._rcv_buffer) == 0
        assert conn.stats.window_drops == 100
        # the connection still works for in-window traffic afterwards
        conn.handle_data(self._data(0))
        assert conn.stats.sdus_delivered == 1


def conditioned_link_pair(conditions, seed=0, policy=None, name="efcp-wire"):
    """An EFCP connection pair talking over a *real* simulated link
    carrying a :class:`LinkConditions` bundle — the integration seam the
    LossyWire tests above deliberately bypass."""
    engine = Engine()
    link = Link(engine, f"{name}{seed}", capacity_bps=1e8, delay=0.002,
                queue_limit=2048, conditions=conditions)
    policy = policy or EfcpPolicy(rto_initial=0.1, rto_min=0.02, rto_max=1.0)
    got_a, got_b = [], []
    a = EfcpConnection(engine, Address(1), Address(2), 1, 2, policy,
                       output=lambda pdu: link.ends[0].send(
                           pdu, pdu.wire_size()),
                       deliver=lambda p, s: got_a.append(p))
    b = EfcpConnection(engine, Address(2), Address(1), 2, 1, policy,
                       output=lambda pdu: link.ends[1].send(
                           pdu, pdu.wire_size()),
                       deliver=lambda p, s: got_b.append(p))

    def into(conn):
        def on_receive(pdu, size):
            if isinstance(pdu, CorruptedFrame):
                return conn.handle_data(pdu)   # stats gate counts + drops
            if isinstance(pdu, DataPdu):
                return conn.handle_data(pdu)
            return conn.handle_control(pdu)
        return on_receive
    link.ends[1].attach(into(b))
    link.ends[0].attach(into(a))
    return engine, link, a, b, got_a, got_b


class TestConditionedLinkStress:
    """EFCP riding links with the network-condition models installed:
    bounded reordering must be fully masked by sequencing, and corrupted
    PDUs must surface only in the stats counters — never as payload."""

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000),
           st.integers(min_value=1, max_value=5))
    def test_property_bounded_reorder_fully_masked(self, seed, depth):
        conditions = LinkConditions(
            reorder=ReorderModel(0.3, depth=depth, max_hold=0.05))
        engine, _link, a, _b, _ga, got_b = conditioned_link_pair(
            conditions, seed=seed)
        for index in range(60):
            a.send(index, 20)
        engine.run(until=60.0)
        assert got_b == list(range(60))
        assert a.all_acknowledged()

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_property_corruption_counted_never_delivered(self, seed):
        conditions = LinkConditions(corruption=CorruptionModel(0.15))
        engine, link, a, b, got_a, got_b = conditioned_link_pair(
            conditions, seed=seed,
            policy=EfcpPolicy(rto_initial=0.05, rto_min=0.02, rto_max=0.5,
                              max_retries=100))
        for index in range(40):
            a.send(("a", index), 50)
            b.send(("b", index), 50)
        engine.run(until=120.0)
        # retransmission masks the damage end-to-end...
        assert got_b == [("a", index) for index in range(40)]
        assert got_a == [("b", index) for index in range(40)]
        # ...and every wire-corrupted frame is visible in the stats, on
        # the side that received it, never as a delivered payload
        wire_corrupted = sum(link.frames_corrupted)
        assert a.stats.corrupted + b.stats.corrupted == wire_corrupted
        assert not any(isinstance(p, CorruptedFrame) for p in got_a + got_b)

    def test_corruption_storm_forces_retransmissions(self):
        conditions = LinkConditions(corruption=CorruptionModel(0.25))
        engine, link, a, _b, _ga, got_b = conditioned_link_pair(
            conditions, seed=3,
            policy=EfcpPolicy(rto_initial=0.05, rto_min=0.02, rto_max=0.5,
                              max_retries=100))
        for index in range(50):
            a.send(index, 40)
        engine.run(until=120.0)
        assert got_b == list(range(50))
        assert sum(link.frames_corrupted) > 0
        assert a.stats.retransmissions > 0


class TestAimdFairness:
    def test_two_aimd_flows_share_a_paced_bottleneck(self):
        """Two AIMD senders through one paced queue converge to similar
        throughput (Jain fairness > 0.9)."""
        engine = Engine()
        rng = random.Random(5)
        # a 2 Mb/s bottleneck queue shared by both connections
        QUEUE_LIMIT = 40
        queue = []
        busy = [False]
        delivered = {1: 0, 2: 0}
        receivers = {}

        def serve():
            if not queue:
                busy[0] = False
                return
            busy[0] = True
            pdu = queue.pop(0)
            service = pdu.wire_size() * 8 / 2e6
            engine.call_later(service, lambda: (deliver(pdu), serve()))

        def deliver(pdu):
            engine.call_later(0.01, receivers[pdu.dst_cep].handle_data, pdu) \
                if isinstance(pdu, DataPdu) else \
                engine.call_later(0.01, receivers[pdu.dst_cep].handle_control,
                                  pdu)

        def bottleneck_output(pdu):
            if isinstance(pdu, DataPdu):
                if len(queue) >= QUEUE_LIMIT:
                    return  # drop: the congestion signal
                queue.append(pdu)
                if not busy[0]:
                    serve()
            else:
                deliver(pdu)   # acks on the (uncongested) reverse path

        policy = EfcpPolicy(congestion=CONGESTION_AIMD, initial_cwnd=2,
                            initial_credit=10_000, send_buffer_limit=50_000,
                            rto_initial=0.2, rto_min=0.05, rto_max=2.0)
        connections = {}
        for flow_id in (1, 2):
            sender_cep, receiver_cep = flow_id * 10, flow_id * 10 + 1

            def make_deliver(fid):
                def on_deliver(payload, size):
                    delivered[fid] += size
                return on_deliver
            sender = EfcpConnection(engine, Address(1), Address(2),
                                    sender_cep, receiver_cep, policy,
                                    output=bottleneck_output,
                                    deliver=lambda p, s: None)
            receiver = EfcpConnection(engine, Address(2), Address(1),
                                      receiver_cep, sender_cep, policy,
                                      output=bottleneck_output,
                                      deliver=make_deliver(flow_id))
            receivers[receiver_cep] = receiver
            receivers[sender_cep] = sender
            connections[flow_id] = sender

        # saturate both senders
        def pump():
            for sender in connections.values():
                while sender.queued_count() < 50:
                    if not sender.send(b"x", 1000):
                        break
            engine.call_later(0.05, pump)
        pump()
        engine.run(until=20.0)
        x, y = delivered[1], delivered[2]
        assert x > 0 and y > 0
        jain = (x + y) ** 2 / (2 * (x * x + y * y))
        assert jain > 0.9, (x, y, jain)
        # and the bottleneck was actually used well
        total_bps = (x + y) * 8 / 20.0
        assert total_bps > 0.5 * 2e6
